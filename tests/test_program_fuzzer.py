"""Structured-program fuzzing (hypothesis front end).

Generates random SmallC programs (nested ifs, bounded while loops,
assignments over a small variable pool) and checks that the baseline
machine, the branch-register machine, and Python all agree on the final
state.  This stresses exactly the machinery the paper adds: branch
lowering, carrier selection, hoisting, and the two emulators' control
flow.

Program rendering and the Python reference model live in
:mod:`repro.fault.progen`, shared with the seeded differential fuzzer
(``repro fuzz``) so both fuzzers agree on generated-program semantics;
hypothesis supplies the search strategy here, while the fault package's
:class:`random.Random`-driven generator supplies CI-reproducible seeds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fault.progen import (
    BINOPS,
    MAX_LOOP,
    VARS,
    expected_output,
    program_source,
)
from tests.conftest import run_both


@st.composite
def expressions(draw):
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return str(draw(st.integers(min_value=-50, max_value=50)))
    if kind == 1:
        return draw(st.sampled_from(VARS))
    op = draw(st.sampled_from(BINOPS))
    left = draw(st.sampled_from(VARS))
    right = draw(st.integers(min_value=-20, max_value=20))
    return "(%s %s %s)" % (left, op, right)


@st.composite
def statements(draw, depth):
    kind = draw(st.integers(min_value=0, max_value=3 if depth > 0 else 1))
    if kind == 0:
        var = draw(st.sampled_from(VARS))
        return [("assign", var, draw(expressions()))]
    if kind == 1:
        var = draw(st.sampled_from(VARS))
        return [("augment", var, draw(expressions()))]
    if kind == 2:
        cond = draw(expressions())
        then = draw(block(depth - 1))
        other = draw(block(depth - 1)) if draw(st.booleans()) else None
        return [("if", cond, then, other)]
    iterations = draw(st.integers(min_value=0, max_value=MAX_LOOP))
    body = draw(block(depth - 1))
    return [("loop", iterations, body)]


@st.composite
def block(draw, depth):
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        out.extend(draw(statements(depth)))
    return out


@settings(max_examples=20, deadline=None, suppress_health_check=list(HealthCheck))
@given(block(depth=2))
def test_structured_program_matches_python_model(stmts):
    pair = run_both(program_source(stmts))
    assert pair.output.decode() == expected_output(stmts)


@settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
@given(block(depth=2))
def test_structured_program_identical_across_engines(stmts):
    """Cross-engine fuzzing: for random structured programs, the
    predecoded fast core must be bit-identical to the reference loop on
    both machines (every counter, register, and data byte -- see
    :func:`repro.harness.conformance.crosscheck_engines`)."""
    from repro.harness.conformance import crosscheck_engines

    source = program_source(stmts)
    for machine in ("baseline", "branchreg"):
        result = crosscheck_engines(
            source, machine, limit=500_000, name="generated"
        )
        assert result["engine"] == "fast"


def test_fuzz_oracle_gates_engines(monkeypatch):
    """The seeded fuzzer's per-case oracle (``repro fuzz`` and the CI
    differential-fuzz job) calls the cross-engine check: an injected
    divergence fails the case."""
    import repro.harness.conformance as conformance
    from repro.errors import EngineDivergence
    from repro.fault.oracle import _check_generated

    stmts = [("assign", "a", "1")]
    _check_generated(stmts, 500_000)  # engines agree: case passes

    def explode(*args, **kwargs):
        raise EngineDivergence("injected", mismatches=["stats"])

    monkeypatch.setattr(conformance, "crosscheck_engines", explode)
    try:
        _check_generated(stmts, 500_000)
    except EngineDivergence:
        pass
    else:
        raise AssertionError("engine divergence did not fail the fuzz case")
