"""Trace-engine wall: compilation mechanics, the documented fallback
matrix, exact limit semantics inside compiled traces, artifact-cache
memoization of trace sources, and a Hypothesis sweep proving
fuzzer-generated programs behave bit-identically under ``engine="trace"``
and the reference interpreter.

Functional equivalence on the real workload suite is pinned by
``tests/test_conformance.py`` (now a three-engine gate); this file pins
the trace engine's *mechanism* on purpose-built hot loops with the
warm-up budget lowered so traces actually compile inside a unit test.
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.icache import PrefetchICache
from repro.ease.environment import compile_for_machine
from repro.emu import tracecore
from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.errors import RuntimeLimitExceeded
from repro.fault.progen import program_source, random_program
from repro.harness.conformance import crosscheck_engines
from repro.obs.emuobs import EmulationObserver
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ExecutionProfiler

_EMULATORS = {"baseline": BaselineEmulator, "branchreg": BranchRegEmulator}
MACHINES = ("baseline", "branchreg")

#: Hot enough that a 64-instruction warm-up sees the back edge many
#: times, with calls and memory traffic inside the loop body.
HOT_SOURCE = """
int total;
int bump(int x) {
    return x + 1;
}
int main() {
    int i;
    i = 0;
    while (i < 4000) {
        total = total + i;
        i = bump(i);
    }
    print_int(total);
    putchar(10);
    return 0;
}
"""
HOT_OUTPUT = b"7998000\n"


@pytest.fixture(scope="module")
def images():
    return {m: compile_for_machine(HOT_SOURCE, m) for m in MACHINES}


@pytest.fixture(autouse=True)
def _trace_unit_env(monkeypatch):
    """Lower the warm-up so unit-sized programs reach compiled traces,
    and keep unit runs off any persistent artifact cache and the
    in-process trace memo (tests share compiled images)."""
    monkeypatch.setenv("REPRO_TRACE_WARMUP", "64")
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    monkeypatch.setattr(tracecore, "HOT_EDGE_MIN", 2)
    monkeypatch.setattr(tracecore, "_TRACE_MEMO", {})
    monkeypatch.setattr(tracecore, "_CODE_MEMO", {})
    monkeypatch.setattr(tracecore, "_MEGA_MEMO", {})
    monkeypatch.setattr(tracecore, "_RETRACE_MEMO", {})


def _run(images, machine, **kwargs):
    emu = _EMULATORS[machine](images[machine].reset(), **kwargs)
    stats = emu.run()
    return emu, stats


def _assert_stats_identical(ref, other):
    """Every measured RunStats field matches; only ``engine`` and the
    trace diagnostics may differ between run loops."""
    for f in dataclasses.fields(ref):
        if f.name == "engine" or f.name in ref.DIAGNOSTIC_FIELDS:
            continue
        assert getattr(ref, f.name) == getattr(other, f.name), (
            "RunStats.%s diverged" % f.name
        )


class TestTraceCompilation:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_hot_loop_compiles_and_enters_traces(self, images, machine):
        emu, stats = _run(images, machine, engine="trace")
        assert stats.engine == "trace"
        assert emu.trace_fallback is None
        assert stats.output == HOT_OUTPUT
        assert stats.traces_compiled >= 1
        assert stats.trace_enters >= 1
        # The loop dominates the run, so most retirement is in-trace.
        assert stats.trace_instructions > stats.instructions // 2

    @pytest.mark.parametrize("machine", MACHINES)
    def test_stats_bit_identical_to_reference(self, images, machine):
        _, ref = _run(images, machine, engine="reference")
        _, trc = _run(images, machine, engine="trace")
        _assert_stats_identical(ref, trc)

    @pytest.mark.parametrize("machine", MACHINES)
    def test_observer_sampling_matches_reference(self, images, machine):
        """The trace engine services a sampling observer natively, at
        reference-identical sample boundaries, while still entering
        compiled traces between samples."""
        samples = {}
        for engine in ("reference", "trace"):
            observer = EmulationObserver(
                sample_every=97, registry=MetricsRegistry()
            )
            emu, stats = _run(
                images, machine, engine=engine, observer=observer
            )
            assert stats.engine == engine
            samples[engine] = (observer.samples, observer.runs)
            if engine == "trace":
                assert stats.trace_enters >= 1
        assert samples["trace"] == samples["reference"]

    def test_compile_metrics_counted(self, images):
        from repro.obs import METRICS

        before = METRICS.counter(
            "emulator.trace_compile", machine="baseline", result="compiled"
        ).value
        _, stats = _run(images, "baseline", engine="trace")
        after = METRICS.counter(
            "emulator.trace_compile", machine="baseline", result="compiled"
        ).value
        assert after - before == stats.traces_compiled >= 1


class TestTraceArtifactCache:
    def test_trace_sources_memoized_and_corruption_recovered(
        self, images, monkeypatch, tmp_path
    ):
        """Compiled trace sources round-trip through the artifact cache
        (second run hits), and a corrupted entry is detected, deleted,
        and rebuilt -- reusing ArtifactCache's guard and telemetry."""
        from repro.obs import METRICS

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(tracecore, "_CACHES", {})

        def compiles(result):
            return METRICS.counter(
                "emulator.trace_compile", machine="baseline", result=result
            ).value

        base_compiled = compiles("compiled")
        base_cached = compiles("cached")
        _, first = _run(images, "baseline", engine="trace")
        assert compiles("compiled") - base_compiled == first.traces_compiled
        entries = list(tmp_path.glob("trace-*.mpc"))
        # Every *selected* anchor memoizes its rendered source; only
        # anchors execution reached get compiled (lazily, on first hit).
        assert len(entries) >= first.traces_compiled >= 1

        # Fresh cache object (new process simulation): sources are hits.
        monkeypatch.setattr(tracecore, "_CACHES", {})
        monkeypatch.setattr(tracecore, "_TRACE_MEMO", {})
        monkeypatch.setattr(tracecore, "_CODE_MEMO", {})
        monkeypatch.setattr(tracecore, "_MEGA_MEMO", {})
        monkeypatch.setattr(tracecore, "_RETRACE_MEMO", {})
        _, second = _run(images, "baseline", engine="trace")
        assert compiles("cached") - base_cached == second.traces_compiled
        _assert_stats_identical(first, second)

        # Corrupt every entry: the guard deletes and recompiles.
        for entry in entries:
            entry.write_bytes(b"garbage not a checksummed pickle")
        monkeypatch.setattr(tracecore, "_CACHES", {})
        monkeypatch.setattr(tracecore, "_TRACE_MEMO", {})
        monkeypatch.setattr(tracecore, "_CODE_MEMO", {})
        monkeypatch.setattr(tracecore, "_MEGA_MEMO", {})
        monkeypatch.setattr(tracecore, "_RETRACE_MEMO", {})
        corrupt_before = METRICS.counter(
            "harness.artifact_cache", result="corrupt"
        ).value
        _, third = _run(images, "baseline", engine="trace")
        assert METRICS.counter(
            "harness.artifact_cache", result="corrupt"
        ).value > corrupt_before
        _assert_stats_identical(first, third)
        for entry in entries:  # rebuilt with valid contents
            assert entry.exists()
        monkeypatch.setattr(tracecore, "_CACHES", {})
        monkeypatch.setattr(tracecore, "_TRACE_MEMO", {})
        monkeypatch.setattr(tracecore, "_CODE_MEMO", {})
        monkeypatch.setattr(tracecore, "_MEGA_MEMO", {})
        monkeypatch.setattr(tracecore, "_RETRACE_MEMO", {})
        base_cached = compiles("cached")
        _, fourth = _run(images, "baseline", engine="trace")
        assert compiles("cached") - base_cached == fourth.traces_compiled


class TestFallbackMatrix:
    """Every hook the trace engine cannot service degrades the run --
    through the fast core when only tracing is impossible, to the
    reference loop when both compiled engines are disqualified -- and
    stamps the reason on ``emulator.trace_fallback`` (and
    ``emulator.fast_fallback`` when the fast core refused too).  The
    sampling observer is the exception: serviced natively, no fallback.
    """

    @pytest.mark.parametrize("machine", MACHINES)
    def test_observer_stays_on_trace(self, images, machine):
        emu, stats = _run(
            images, machine, engine="trace",
            observer=EmulationObserver(registry=MetricsRegistry()),
        )
        assert stats.engine == "trace"
        assert emu.trace_fallback is None
        assert stats.engine_fallback == ""

    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize(
        "hook,reason",
        [
            (lambda: {"profiler": ExecutionProfiler()},
             "profiler attached"),
            (lambda: {"deadline_s": 60.0},
             "wall-clock deadline requested"),
            (lambda: {"record_edges": True},
             "edge-ring recording requested"),
            (lambda: {"icache": PrefetchICache(words=64)},
             "icache model attached"),
        ],
        ids=["profiler", "deadline", "edge-ring", "icache"],
    )
    def test_per_step_hooks_force_reference(
        self, images, machine, hook, reason
    ):
        emu, stats = _run(images, machine, engine="trace", **hook())
        assert stats.engine == "reference"
        assert emu.trace_fallback == reason
        assert emu.fast_fallback == reason
        assert stats.engine_fallback == reason
        assert stats.output == HOT_OUTPUT

    def test_proxied_memory_forces_reference(self, images):
        from repro.fault.inject import _MisalignedMemory

        emu = BaselineEmulator(images["baseline"].reset(), engine="trace")
        emu.memory = _MisalignedMemory(emu.memory, trigger=10**9)
        stats = emu.run()
        assert stats.engine == "reference"
        assert emu.trace_fallback == "memory proxied (fault injection)"
        assert emu.fast_fallback == "memory proxied (fault injection)"
        assert stats.engine_fallback == "memory proxied (fault injection)"
        assert stats.output == HOT_OUTPUT

    def test_proxied_branch_regs_force_reference(self, images):
        class _ProxiedRegs(list):
            pass

        emu = BranchRegEmulator(images["branchreg"].reset(), engine="trace")
        emu.b = _ProxiedRegs(emu.b)
        stats = emu.run()
        assert stats.engine == "reference"
        assert emu.trace_fallback == (
            "branch registers proxied (fault injection)"
        )
        assert stats.engine_fallback == (
            "branch registers proxied (fault injection)"
        )

    @pytest.mark.parametrize("machine", MACHINES)
    def test_trace_degrades_to_fast_when_compile_yields_nothing(
        self, images, machine, monkeypatch
    ):
        """A warm-up that never fires (budget above the whole run) means
        no traces exist -- the run must still complete on the trace
        engine's off-trace (fused) dispatch with identical results."""
        monkeypatch.setenv("REPRO_TRACE_WARMUP", "100000000")
        _, ref = _run(images, machine, engine="reference")
        emu, trc = _run(images, machine, engine="trace")
        assert trc.engine == "trace"
        assert trc.traces_compiled == 0
        assert trc.trace_enters == 0
        _assert_stats_identical(ref, trc)


class TestLimitBoundaries:
    """The instruction budget must bite at the *exact* reference
    instruction even when it lands inside a compiled trace: the fuel
    guard side-exits at the last complete iteration and hands the tail
    to the off-trace loops (the 1..255 sweep crosses the warm-up edge,
    trace entry, and every side-exit boundary of the hot loop)."""

    @pytest.mark.parametrize("machine", MACHINES)
    def test_limit_parity_sweep(self, images, machine):
        image = images[machine]
        traced_limits = 0
        for limit in list(range(1, 256)) + [997, 4001]:
            outcomes = {}
            for engine in ("reference", "trace"):
                emu = _EMULATORS[machine](
                    image.reset(), limit=limit, engine=engine
                )
                try:
                    emu.run()
                    outcomes[engine] = ("halted", emu.pc, emu.icount)
                except RuntimeLimitExceeded as exc:
                    outcomes[engine] = ("limit", exc.pc, exc.icount)
                assert emu.icount <= limit
                if engine == "trace" and emu.stats.trace_enters:
                    traced_limits += 1
            assert outcomes["trace"] == outcomes["reference"], (
                "limit=%d diverged on %s: %r" % (limit, machine, outcomes)
            )
        # The sweep must actually exercise limits landing mid-trace.
        assert traced_limits > 50

    @pytest.mark.parametrize("machine", MACHINES)
    def test_full_state_parity_under_limits(self, images, machine):
        """Beyond icount/pc: the complete architectural state at a
        mid-trace limit matches the reference (crosscheck_engines runs
        the pairwise full-state comparison)."""
        for limit in (80, 129, 200):
            crosscheck_engines(
                HOT_SOURCE, machine, limit=limit, name="hot-limit",
                engines=("trace",),
            )


class TestFuzzedPrograms:
    """Hypothesis wall: seeded fuzzer-generated programs, wrapped in a
    hot outer loop so the trace engine compiles their bodies, must be
    bit-identical to the reference on every observable -- including
    under random instruction limits that land inside compiled traces."""

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=list(HealthCheck),
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        limit=st.one_of(
            st.none(), st.integers(min_value=1, max_value=255)
        ),
    )
    def test_generated_program_trace_equals_reference(self, seed, limit):
        import os

        os.environ["REPRO_TRACE_WARMUP"] = "24"
        rng = random.Random(seed)
        stmts = [("loop", 5, [("loop", 5, random_program(rng, depth=2))])]
        source = program_source(stmts)
        for machine in MACHINES:
            crosscheck_engines(
                source, machine, name="hypo-%d" % seed,
                limit=limit if limit is not None else 2_000_000,
                engines=("trace",),
            )
