"""Unit tests for the predecoded fast core's machinery.

Functional equivalence with the reference loop is proven by
``tests/test_conformance.py``; this file pins the *mechanism*: engine
resolution, the documented fallback matrix in
``BaseEmulator._select_loop``, exact instruction-limit semantics at
superinstruction boundaries, and the invariant that every run-loop
variant retires the same instruction stream.
"""

import dataclasses

import pytest

from repro.cache.icache import PrefetchICache
from repro.ease.environment import compile_for_machine
from repro.emu.baseline_emu import BaselineEmulator
from repro.emu.branchreg_emu import BranchRegEmulator
from repro.emu.fastcore import ENGINES, resolve_engine
from repro.errors import RuntimeLimitExceeded
from repro.obs.emuobs import EmulationObserver
from repro.obs.profile import ExecutionProfiler

_EMULATORS = {"baseline": BaselineEmulator, "branchreg": BranchRegEmulator}

#: Long enough to cross every superinstruction-chain shape, with calls,
#: loops, and memory traffic.
LOOP_SOURCE = """
int total;
int main() {
    int i;
    i = 0;
    while (i < 40) {
        total = total + i;
        i = i + 1;
    }
    print_int(total);
    putchar(10);
    return 0;
}
"""


@pytest.fixture(scope="module")
def images():
    return {
        machine: compile_for_machine(LOOP_SOURCE, machine)
        for machine in ("baseline", "branchreg")
    }


def _run(images, machine, **kwargs):
    emu = _EMULATORS[machine](images[machine].reset(), **kwargs)
    stats = emu.run()
    return emu, stats


class TestEngineResolution:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == "fast"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine() == "reference"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine("fast") == "fast"

    def test_invalid_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_engine("turbo")
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ValueError):
            resolve_engine()

    def test_emulator_honours_env(self, monkeypatch, images):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        _, stats = _run(images, "baseline")
        assert stats.engine == "reference"

    def test_engines_constant(self):
        assert ENGINES == ("fast", "reference", "trace")


class TestFallbackMatrix:
    """Each hook the fast core cannot service forces the reference loop
    and records why; the run still completes correctly.  The sampling
    observer is the exception: it is serviced natively."""

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_fast_runs_by_default(self, images, machine):
        emu, stats = _run(images, machine, engine="fast")
        assert stats.engine == "fast"
        assert emu.fast_fallback is None
        assert stats.output == b"780\n"

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_reference_engine_never_predecodes(self, images, machine):
        emu, stats = _run(images, machine, engine="reference")
        assert stats.engine == "reference"
        assert emu.fast_fallback is None

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_observer_stays_fast(self, images, machine):
        """An observer alone no longer disqualifies the fast core: the
        sampling loop services it at reference-identical sample points."""
        from repro.obs.metrics import MetricsRegistry

        observers = {}
        for engine in ENGINES:
            observers[engine] = EmulationObserver(
                sample_every=16, registry=MetricsRegistry()
            )
            emu, stats = _run(
                images, machine, engine=engine, observer=observers[engine]
            )
            assert stats.engine == engine
            assert emu.fast_fallback is None
            assert stats.output == b"780\n"
        assert observers["fast"].samples == observers["reference"].samples
        assert observers["fast"].runs == observers["reference"].runs

    def test_profiler_forces_reference(self, images):
        emu, stats = _run(
            images, "branchreg", engine="fast", profiler=ExecutionProfiler()
        )
        assert stats.engine == "reference"
        assert emu.fast_fallback == "profiler attached"

    def test_deadline_forces_reference(self, images):
        emu, stats = _run(
            images, "baseline", engine="fast", deadline_s=60.0
        )
        assert stats.engine == "reference"
        assert emu.fast_fallback == "wall-clock deadline requested"

    def test_edge_ring_forces_reference(self, images):
        emu, stats = _run(
            images, "baseline", engine="fast", record_edges=True
        )
        assert stats.engine == "reference"
        assert emu.fast_fallback == "edge-ring recording requested"

    def test_icache_forces_reference(self, images):
        emu, stats = _run(
            images, "branchreg", engine="fast",
            icache=PrefetchICache(words=64),
        )
        assert stats.engine == "reference"
        assert emu.fast_fallback == "icache model attached"

    def test_fault_proxied_memory_forces_reference(self, images):
        """A fault injector replacing machine state (here the memory, as
        ``inject_misaligned_access`` does) must disqualify predecode:
        the fast core burned direct byte access into its closures."""
        from repro.fault.inject import _MisalignedMemory

        emu = BaselineEmulator(images["baseline"].reset(), engine="fast")
        emu.memory = _MisalignedMemory(emu.memory, trigger=10**9)
        stats = emu.run()
        assert stats.engine == "reference"
        assert emu.fast_fallback == "memory proxied (fault injection)"
        assert stats.output == b"780\n"

    def test_fault_proxied_branch_regs_force_reference(self, images):
        """Any non-plain-list branch-register file (the shape every
        branch-register fault injector installs) disqualifies predecode,
        even a behaviourally transparent one."""

        class _ProxiedRegs(list):
            pass

        emu = BranchRegEmulator(images["branchreg"].reset(), engine="fast")
        emu.b = _ProxiedRegs(emu.b)
        stats = emu.run()
        assert stats.engine == "reference"
        assert emu.fast_fallback == (
            "branch registers proxied (fault injection)"
        )
        assert stats.output == b"780\n"


class TestLimitBoundaries:
    """The instruction budget must bite at the *exact* same instruction
    under both engines, including limits that land inside a fused
    superinstruction chain (the fast loop must hand the tail back to the
    reference loop rather than overshoot)."""

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_limit_parity_sweep(self, images, machine):
        image = images[machine]
        for limit in list(range(1, 24)) + [97, 161, 255]:
            outcomes = {}
            for engine in ENGINES:
                emu = _EMULATORS[machine](
                    image.reset(), limit=limit, engine=engine
                )
                try:
                    emu.run()
                    outcomes[engine] = ("halted", emu.pc, emu.icount)
                except RuntimeLimitExceeded as exc:
                    outcomes[engine] = ("limit", exc.pc, exc.icount)
                assert emu.icount <= limit
            assert outcomes["fast"] == outcomes["reference"], (
                "limit=%d diverged on %s: %r" % (limit, machine, outcomes)
            )

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_observed_limit_parity_sweep(self, images, machine):
        """The sampling loop must hit the budget at the same instruction
        and deliver the same sample count as the reference observed loop,
        for limits landing on and off sample boundaries."""
        from repro.obs.metrics import MetricsRegistry

        image = images[machine]
        for limit in list(range(1, 24)) + [97, 161, 255]:
            outcomes = {}
            for engine in ENGINES:
                observer = EmulationObserver(
                    sample_every=8, registry=MetricsRegistry()
                )
                emu = _EMULATORS[machine](
                    image.reset(), limit=limit, engine=engine,
                    observer=observer,
                )
                try:
                    emu.run()
                    outcomes[engine] = (
                        "halted", emu.pc, emu.icount, observer.samples
                    )
                except RuntimeLimitExceeded as exc:
                    outcomes[engine] = (
                        "limit", exc.pc, exc.icount, observer.samples
                    )
                assert emu.icount <= limit
            assert outcomes["fast"] == outcomes["reference"], (
                "limit=%d diverged on %s: %r" % (limit, machine, outcomes)
            )


class TestLoopVariantsAgree:
    """Every run-loop variant behind ``_select_loop`` (plain, observed,
    hardened, profiled, fast) retires the identical instruction stream:
    same RunStats apart from the ``engine`` identity field."""

    @pytest.mark.parametrize("machine", ("baseline", "branchreg"))
    def test_all_variants_identical(self, images, machine):
        variants = {
            "fast": dict(engine="fast"),
            "plain": dict(engine="reference"),
            "observed": dict(
                engine="reference", observer=EmulationObserver(sample_every=8)
            ),
            "fast_observed": dict(
                engine="fast", observer=EmulationObserver(sample_every=8)
            ),
            "hardened": dict(engine="reference", record_edges=True),
            "profiled": dict(
                engine="reference", profiler=ExecutionProfiler()
            ),
        }
        baseline_fields = None
        for label, kwargs in variants.items():
            _, stats = _run(images, machine, **kwargs)
            fields = {
                f.name: getattr(stats, f.name)
                for f in dataclasses.fields(stats)
                if f.name != "engine"
            }
            if baseline_fields is None:
                baseline_fields = (label, fields)
                continue
            first_label, first = baseline_fields
            assert fields == first, (
                "%s and %s loops disagree on %s" % (first_label, label, machine)
            )
