"""The checkpoint journal: durability, torn-write tolerance, run keys,
and resume semantics (schema ``repro.checkpoint/1``)."""

import json
import os

import pytest

from repro.harness.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointJournal,
    checkpoint_run_key,
    _decode_payload,
    _encode_payload,
)
from repro.harness.runner import run_suite
from repro.obs import METRICS


class TestRunKey:
    def test_stable_for_identical_configs(self):
        a = checkpoint_run_key(["wc", "cal"], 1000, options=(("x", 1),))
        b = checkpoint_run_key(["wc", "cal"], 1000, options=(("x", 1),))
        assert a == b

    def test_changes_with_every_parameter(self):
        base = checkpoint_run_key(["wc"], 1000)
        assert checkpoint_run_key(["cal"], 1000) != base
        assert checkpoint_run_key(["wc"], 2000) != base
        assert checkpoint_run_key(["wc"], 1000, engine="reference") != base
        assert checkpoint_run_key(
            ["wc"], 1000, limit_overrides={"wc": 5}
        ) != base
        assert checkpoint_run_key(["wc"], 1000, fault_tolerant=True) != base
        assert checkpoint_run_key(["wc"], 1000, deadline_s=1.0) != base
        assert checkpoint_run_key(["wc"], 1000, sample_every=64) != base

    def test_override_order_is_canonical(self):
        assert checkpoint_run_key(
            ["wc"], 1000, limit_overrides={"a": 1, "b": 2}
        ) == checkpoint_run_key(
            ["wc"], 1000, limit_overrides={"b": 2, "a": 1}
        )


class TestPayloadCodec:
    def test_round_trip(self):
        payload, digest = _encode_payload({"answer": 42, "blob": b"\x00\xff"})
        assert _decode_payload(payload, digest) == {
            "answer": 42, "blob": b"\x00\xff",
        }

    def test_checksum_guards_payload(self):
        payload, digest = _encode_payload([1, 2, 3])
        with pytest.raises(ValueError):
            _decode_payload(payload, "0" * 64)


class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "ok", {"stats": 1}, attempts=2)
            journal.record("cal", "failure", {"workload": "cal"})
        reloaded = CheckpointJournal.open(path, "key1", resume=True)
        try:
            assert reloaded.get("wc") == {
                "workload": "wc", "status": "ok", "attempts": 2,
                "result": {"stats": 1},
            }
            assert reloaded.get("cal")["status"] == "failure"
            assert reloaded.get("sort") is None
        finally:
            reloaded.close()

    def test_header_schema_and_key(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        CheckpointJournal.open(path, "key1").close()
        header = json.loads(open(path).readline())
        assert header == {"schema": CHECKPOINT_SCHEMA, "run_key": "key1"}

    def test_torn_trailing_record_is_dropped(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "ok", {"stats": 1})
            journal.record("cal", "ok", {"stats": 2})
        # Simulate a coordinator killed mid-append: truncate into the
        # last record's JSON line.
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-20])
        reloaded = CheckpointJournal.open(path, "key1", resume=True)
        try:
            assert reloaded.get("wc") is not None
            assert reloaded.get("cal") is None
        finally:
            reloaded.close()

    def test_corrupt_payload_is_dropped(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "ok", {"stats": 1})
        lines = open(path).read().splitlines()
        doc = json.loads(lines[1])
        doc["sha256"] = "0" * 64
        open(path, "w").write(lines[0] + "\n" + json.dumps(doc) + "\n")
        reloaded = CheckpointJournal.open(path, "key1", resume=True)
        try:
            assert reloaded.get("wc") is None
        finally:
            reloaded.close()

    def test_run_key_mismatch_starts_fresh(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "ok", {"stats": 1})
        other = CheckpointJournal.open(path, "key2", resume=True)
        try:
            assert other.get("wc") is None
        finally:
            other.close()
        # ...and the file was truncated to the new header.
        header = json.loads(open(path).readline())
        assert header["run_key"] == "key2"

    def test_without_resume_truncates(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "ok", {"stats": 1})
        fresh = CheckpointJournal.open(path, "key1", resume=False)
        try:
            assert fresh.get("wc") is None
        finally:
            fresh.close()

    def test_bad_status_rejected(self, tmp_path):
        with CheckpointJournal.open(str(tmp_path / "c.jsonl"), "k") as journal:
            with pytest.raises(ValueError):
                journal.record("wc", "exploded", {})

    def test_last_record_per_workload_wins(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointJournal.open(path, "key1") as journal:
            journal.record("wc", "failure", {"workload": "wc"})
            journal.record("wc", "ok", {"stats": 1}, attempts=2)
        reloaded = CheckpointJournal.open(path, "key1", resume=True)
        try:
            assert reloaded.get("wc")["status"] == "ok"
        finally:
            reloaded.close()


class TestSerialResume:
    def test_resume_skips_completed_and_matches_fresh_run(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        kwargs = dict(
            subset=("wc", "cal", "sort"), limit=200_000, jobs=1,
            use_cache=False, cache_dir=False,
        )
        reference = run_suite(**kwargs)
        from repro.errors import SuiteInterrupted

        with pytest.raises(SuiteInterrupted) as info:
            run_suite(checkpoint=path, interrupt_after=1, **kwargs)
        assert len(info.value.partial) == 1
        assert len(info.value.remaining) == 2
        METRICS.reset()
        resumed = run_suite(checkpoint=path, resume=True, **kwargs)
        assert list(resumed) == list(reference)
        hits = sum(
            row["value"]
            for row in METRICS.snapshot()["counters"]
            if row["name"] == "harness.checkpoint"
            and row["labels"].get("result") == "hit"
        )
        assert hits == 1

    def test_changed_config_ignores_stale_journal(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        kwargs = dict(subset=("wc",), jobs=1, use_cache=False, cache_dir=False)
        run_suite(limit=200_000, checkpoint=path, **kwargs)
        # A different limit must not resurrect the 200k results.
        result = run_suite(
            limit=150_000, checkpoint=path, resume=True, **kwargs
        )
        fresh = run_suite(limit=150_000, **kwargs)
        assert list(result) == list(fresh)

    def test_journal_file_has_one_record_per_workload(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        run_suite(
            subset=("wc", "cal"), limit=200_000, jobs=1, use_cache=False,
            cache_dir=False, checkpoint=path,
        )
        lines = open(path).read().splitlines()
        records = [json.loads(line) for line in lines[1:]]
        assert sorted(r["workload"] for r in records) == ["cal", "wc"]
        assert all(r["status"] == "ok" for r in records)
        assert os.path.getsize(path) > 0
