"""Tests for semantic analysis (type checking, scoping, lvalues)."""

import pytest

from repro.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.sema import analyze


def check(source):
    return analyze(parse(source))


def fails(source, fragment=""):
    with pytest.raises(SemanticError) as excinfo:
        check(source)
    if fragment:
        assert fragment in str(excinfo.value)


class TestDeclarations:
    def test_simple_program(self):
        check("int main() { return 0; }")

    def test_missing_main(self):
        fails("int f() { return 0; }", "main")

    def test_duplicate_global(self):
        fails("int a; int a; int main() { return 0; }")

    def test_duplicate_function(self):
        fails("int f(){return 0;} int f(){return 1;} int main(){return 0;}")

    def test_duplicate_local_same_scope(self):
        fails("int main() { int a; int a; return 0; }")

    def test_shadowing_in_inner_scope_ok(self):
        check("int main() { int a = 1; { int a = 2; } return a; }")

    def test_void_variable_rejected(self):
        fails("void v; int main() { return 0; }")
        fails("int main() { void v; return 0; }")

    def test_too_many_parameters(self):
        fails(
            "int f(int a,int b,int c,int d,int e){return 0;} int main(){return 0;}",
            "at most",
        )

    def test_undeclared_identifier(self):
        fails("int main() { return nope; }", "undeclared")

    def test_forward_call_without_prototype(self):
        check("int main() { return later(); } int later() { return 3; }")

    def test_mutual_recursion(self):
        check(
            "int even(int n){ if(n==0) return 1; return odd(n-1);}"
            "int odd(int n){ if(n==0) return 0; return even(n-1);}"
            "int main(){ return even(4); }"
        )


class TestTypeChecking:
    def test_pointer_deref_non_pointer(self):
        fails("int main() { int a; return *a; }", "dereference")

    def test_void_pointer_deref(self):
        fails("void *p; int main() { return *p; }")

    def test_modulo_on_float_rejected(self):
        fails("int main() { float f = 1.0; return 2 % f; }")

    def test_shift_on_float_rejected(self):
        fails("int main() { float f = 1.0; return 1 << f; }")

    def test_float_compare_ok(self):
        check("int main() { float f = 1.0; if (f < 2.0) return 1; return 0; }")

    def test_pointer_plus_pointer_rejected(self):
        fails("int main() { char *a; char *b; return a + b; }")

    def test_pointer_minus_pointer_ok(self):
        check("int main() { char *a; char *b; return a - b; }")

    def test_return_type_mismatch(self):
        fails("void f() { return 3; } int main() { f(); return 0; }")
        fails("int f() { return; } int main() { return f(); }")

    def test_call_arity(self):
        fails("int f(int a){return a;} int main(){ return f(); }", "arguments")
        fails("int f(int a){return a;} int main(){ return f(1,2); }", "arguments")

    def test_call_arg_types(self):
        check("int f(float x){return (int) x;} int main(){ return f(3); }")

    def test_builtins_visible(self):
        check("int main() { putchar(getchar()); return 0; }")

    def test_assign_to_array_rejected(self):
        fails("int a[3]; int b[3]; int main() { a = b; return 0; }")

    def test_non_lvalue_assignment(self):
        fails("int main() { 3 = 4; return 0; }", "lvalue")

    def test_incdec_requires_lvalue(self):
        fails("int main() { (1 + 2)++; return 0; }")

    def test_incdec_on_float_rejected(self):
        fails("int main() { float f = 1.0; f++; return 0; }")

    def test_address_of_rvalue_rejected(self):
        fails("int main() { int *p = &3; return 0; }")

    def test_index_non_pointer(self):
        fails("int main() { int a; return a[0]; }")

    def test_non_integral_index(self):
        fails("int a[4]; int main() { float f = 1.0; return a[f]; }")

    def test_break_outside_loop(self):
        fails("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        fails("int main() { continue; return 0; }")

    def test_break_inside_switch_ok(self):
        check("int main() { switch (1) { case 1: break; } return 0; }")

    def test_duplicate_case(self):
        fails("int main() { switch (1) { case 1: break; case 1: break; } return 0; }")

    def test_two_defaults(self):
        fails(
            "int main() { switch (1) { default: break; default: break; } return 0; }"
        )

    def test_switch_on_float_rejected(self):
        fails("int main() { float f = 1.0; switch (f) { case 1: break; } return 0; }")

    def test_local_aggregate_initializer_rejected(self):
        fails("int main() { int a[2] = {1, 2}; return 0; }")

    def test_global_non_constant_initializer_rejected(self):
        fails("int g; int h = g; int main() { return 0; }")

    def test_annotation_present_after_analysis(self):
        prog = check("int main() { return 1 + 2; }")
        expr = prog.functions[0].body.stmts[0].value
        assert expr.ctype.is_int()

    def test_addressed_symbol_marked(self):
        prog = check("int main() { int a; int *p = &a; return *p; }")
        decl = prog.functions[0].body.stmts[0].decls[0]
        assert decl.symbol.addressed

    def test_plain_local_not_addressed(self):
        prog = check("int main() { int a = 1; return a; }")
        decl = prog.functions[0].body.stmts[0].decls[0]
        assert not decl.symbol.addressed
