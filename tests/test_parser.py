"""Tests for the SmallC parser."""

import pytest

from repro.errors import ParseError
from repro.lang import astnodes as ast
from repro.lang import ctypes as ct
from repro.lang.parser import parse


def parse_expr(text):
    """Parse `text` as the expression in `int main() { return <text>; }`."""
    prog = parse("int main() { return %s; }" % text)
    return prog.functions[0].body.stmts[0].value


class TestTopLevel:
    def test_empty_program(self):
        prog = parse("")
        assert prog.functions == []
        assert prog.globals == []

    def test_global_scalars(self):
        prog = parse("int a; char b; float c;")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]
        assert prog.globals[0].ctype is ct.INT

    def test_global_with_initializer(self):
        prog = parse("int a = 5;")
        assert isinstance(prog.globals[0].init, ast.IntLit)

    def test_global_array(self):
        prog = parse("int a[10];")
        assert prog.globals[0].ctype == ct.ArrayType(ct.INT, 10)

    def test_global_2d_array(self):
        prog = parse("int a[3][4];")
        outer = prog.globals[0].ctype
        assert outer.length == 3
        assert outer.elem.length == 4

    def test_unsized_array_from_string(self):
        prog = parse('char s[] = "hi";')
        assert prog.globals[0].ctype.length == 3  # includes NUL

    def test_unsized_array_from_braces(self):
        prog = parse("int a[] = {1, 2, 3};")
        assert prog.globals[0].ctype.length == 3

    def test_unsized_array_without_init_raises(self):
        with pytest.raises(ParseError):
            parse("int a[];")

    def test_pointer_declarations(self):
        prog = parse("char *p; int **q;")
        assert prog.globals[0].ctype == ct.PointerType(ct.CHAR)
        assert prog.globals[1].ctype == ct.PointerType(ct.PointerType(ct.INT))

    def test_function_definition(self):
        prog = parse("int add(int a, int b) { return a + b; }")
        fn = prog.functions[0]
        assert fn.name == "add"
        assert len(fn.params) == 2
        assert fn.return_type is ct.INT

    def test_function_prototype_ignored(self):
        prog = parse("int f(int x);\nint f(int x) { return x; }")
        assert len(prog.functions) == 1

    def test_void_params(self):
        prog = parse("int f(void) { return 0; }")
        assert prog.functions[0].params == []

    def test_pointer_return_type(self):
        prog = parse("char *f() { return (char *) 0; }")
        assert prog.functions[0].return_type == ct.PointerType(ct.CHAR)

    def test_array_param_decays(self):
        prog = parse("int f(int a[]) { return a[0]; }")
        assert prog.functions[0].params[0].ctype == ct.PointerType(ct.INT)


class TestStatements:
    def test_if_else(self):
        prog = parse("int main() { if (1) return 1; else return 2; }")
        stmt = prog.functions[0].body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert stmt.other is not None

    def test_dangling_else_binds_inner(self):
        prog = parse("int main() { if (1) if (2) return 1; else return 2; }")
        outer = prog.functions[0].body.stmts[0]
        assert outer.other is None
        assert outer.then.other is not None

    def test_while(self):
        prog = parse("int main() { while (1) ; return 0; }")
        assert isinstance(prog.functions[0].body.stmts[0], ast.While)

    def test_do_while(self):
        prog = parse("int main() { do ; while (0); return 0; }")
        assert isinstance(prog.functions[0].body.stmts[0], ast.DoWhile)

    def test_for_full(self):
        prog = parse("int main() { int i; for (i = 0; i < 3; i++) ; return 0; }")
        stmt = prog.functions[0].body.stmts[1]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None and stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        prog = parse("int main() { for (;;) break; return 0; }")
        stmt = prog.functions[0].body.stmts[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_with_declaration(self):
        prog = parse("int main() { for (int i = 0; i < 3; i++) ; return 0; }")
        assert isinstance(prog.functions[0].body.stmts[0].init, ast.DeclStmt)

    def test_break_continue(self):
        prog = parse("int main() { while (1) { break; } while (1) { continue; } return 0; }")
        assert isinstance(prog.functions[0].body.stmts[0].body.stmts[0], ast.Break)

    def test_switch(self):
        prog = parse(
            "int main(){int x;x=1;switch(x){case 1: return 1; case 2: break; default: return 0;} return 9;}"
        )
        sw = prog.functions[0].body.stmts[2]
        assert isinstance(sw, ast.Switch)
        assert [v for v, _ in sw.cases] == [1, 2, None]

    def test_switch_negative_case(self):
        prog = parse("int main(){switch(0){case -3: break;} return 0;}")
        assert prog.functions[0].body.stmts[0].cases[0][0] == -3

    def test_statement_before_case_raises(self):
        with pytest.raises(ParseError):
            parse("int main(){switch(0){ return 1; case 1: break;} }")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0;")

    def test_multi_declarator_line(self):
        prog = parse("int main() { int a = 1, b = 2, c; return a + b; }")
        decl = prog.functions[0].body.stmts[0]
        assert [d.name for d in decl.decls] == ["a", "b", "c"]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parens_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_logical_lowest(self):
        expr = parse_expr("1 == 2 && 3 < 4 || 5")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_assignment_right_associative(self):
        prog = parse("int main() { int a; int b; a = b = 1; return a; }")
        assign = prog.functions[0].body.stmts[2].expr
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment(self):
        prog = parse("int main() { int a = 0; a += 2; a <<= 1; return a; }")
        assert prog.functions[0].body.stmts[1].expr.op == "+="
        assert prog.functions[0].body.stmts[2].expr.op == "<<="

    def test_ternary(self):
        expr = parse_expr("1 ? 2 : 3")
        assert isinstance(expr, ast.Ternary)

    def test_nested_ternary_right_assoc(self):
        expr = parse_expr("1 ? 2 : 3 ? 4 : 5")
        assert isinstance(expr.other, ast.Ternary)

    def test_unary_operators(self):
        for op in ("-", "!", "~"):
            expr = parse_expr("%s5" % op)
            assert isinstance(expr, ast.Unary) and expr.op == op

    def test_unary_plus_is_noop(self):
        expr = parse_expr("+5")
        assert isinstance(expr, ast.IntLit)

    def test_deref_and_addrof(self):
        prog = parse("int main() { int a; int *p; p = &a; return *p; }")
        ret = prog.functions[0].body.stmts[2]
        assert isinstance(prog.functions[0].body.stmts[3].value, ast.Unary)

    def test_cast(self):
        expr = parse_expr("(char *) 0")
        assert isinstance(expr, ast.Cast)
        assert expr.target == ct.PointerType(ct.CHAR)

    def test_cast_vs_parenthesised_expr(self):
        expr = parse_expr("(1) + 2")
        assert expr.op == "+"

    def test_call_with_args(self):
        prog = parse("int f(int a, int b){return 0;} int main() { return f(1, 2); }")
        call = prog.functions[1].body.stmts[0].value
        assert isinstance(call, ast.Call)
        assert len(call.args) == 2

    def test_postfix_incdec(self):
        expr = parse_expr("0")  # warm-up
        prog = parse("int main() { int i = 0; i++; --i; return i; }")
        post = prog.functions[0].body.stmts[1].expr
        pre = prog.functions[0].body.stmts[2].expr
        assert not post.prefix and post.op == "++"
        assert pre.prefix and pre.op == "--"

    def test_index_chain(self):
        expr = parse_expr("a[1][2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_adjacent_strings_concatenate(self):
        expr = parse_expr('"ab" "cd"')
        assert expr.value == "abcd"

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse("int main() { return + ; }")
