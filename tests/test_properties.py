"""Property-based tests: generated SmallC programs behave identically on
both machines and match a Python evaluation of the same expression."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.emu.intmath import cdiv, crem, wrap
from tests.conftest import run_both


# ---- expression generator ------------------------------------------------


class Expr:
    """A random integer expression with its Python value."""

    def __init__(self, text, value):
        self.text = text
        self.value = value


def _leaf(draw):
    value = draw(st.integers(min_value=-80, max_value=80))
    return Expr("(%d)" % value, value)


_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^"]


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return _leaf(draw)
    op = draw(st.sampled_from(_BINOPS))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if op in ("/", "%") and right.value == 0:
        right = Expr("(1)", 1)
    text = "(%s %s %s)" % (left.text, op, right.text)
    if op == "+":
        value = wrap(left.value + right.value)
    elif op == "-":
        value = wrap(left.value - right.value)
    elif op == "*":
        value = wrap(left.value * right.value)
    elif op == "/":
        value = cdiv(left.value, right.value)
    elif op == "%":
        value = crem(left.value, right.value)
    elif op == "&":
        value = wrap((left.value & 0xFFFFFFFF) & (right.value & 0xFFFFFFFF))
    elif op == "|":
        value = wrap((left.value & 0xFFFFFFFF) | (right.value & 0xFFFFFFFF))
    else:
        value = wrap((left.value & 0xFFFFFFFF) ^ (right.value & 0xFFFFFFFF))
    return Expr(text, value)


@settings(max_examples=25, deadline=None, suppress_health_check=list(HealthCheck))
@given(expressions(depth=3))
def test_random_expression_matches_python(expr):
    source = (
        "int main() { print_int(%s); putchar(10); return 0; }" % expr.text
    )
    pair = run_both(source)
    assert pair.output == b"%d\n" % expr.value


@settings(max_examples=20, deadline=None, suppress_health_check=list(HealthCheck))
@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=8)
)
def test_random_array_sum(values):
    decls = ", ".join(str(v) for v in values)
    source = """
    int data[%d] = {%s};
    int main() {
        int i; int n = 0;
        for (i = 0; i < %d; i++) n += data[i];
        print_int(n); putchar(10);
        return 0;
    }
    """ % (len(values), decls, len(values))
    pair = run_both(source)
    assert pair.output == b"%d\n" % sum(values)


@settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
@given(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=10),
)
def test_random_loop_bounds(limit, step):
    source = """
    int main() {
        int i; int n = 0;
        for (i = 0; i < %d; i += %d) n++;
        print_int(n); putchar(10);
        return 0;
    }
    """ % (limit, step)
    pair = run_both(source)
    expected = len(range(0, limit, step))
    assert pair.output == b"%d\n" % expected


@settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
@given(st.binary(min_size=0, max_size=60))
def test_echo_arbitrary_bytes(data):
    source = """
    int main() { int c; while ((c = getchar()) != -1) putchar(c); return 0; }
    """
    pair = run_both(source, stdin=data)
    assert pair.output == data


@settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_print_int_roundtrip(value):
    # print_int is SmallC library code; INT_MIN negation wraps, so skip it.
    if value == -(2**31):
        value = value + 1
    source = "int main() { print_int(%d); putchar(10); return 0; }" % value
    pair = run_both(source)
    assert pair.output == b"%d\n" % value


@settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
@given(
    st.lists(
        st.integers(min_value=0, max_value=255), min_size=2, max_size=12
    )
)
def test_branch_register_count_invariance(values):
    """The number of branch registers must never change *results*, only
    costs (Section 9 ablation safety)."""
    from repro.machine.spec import branchreg_spec

    decls = ", ".join(str(v) for v in values)
    source = """
    int data[%d] = {%s};
    int main() {
        int i; int best = -1;
        for (i = 0; i < %d; i++)
            if (data[i] > best) best = data[i];
        print_int(best); putchar(10);
        return 0;
    }
    """ % (len(values), decls, len(values))
    pair4 = run_both(source, branchreg_options={"spec": branchreg_spec(4)})
    pair8 = run_both(source)
    assert pair4.output == pair8.output == b"%d\n" % max(values)
