"""Tests for differential run analysis and drift gating (repro.obs.diff)."""

import copy
import json

import pytest

from repro.obs.diff import (
    TABLE1_EXPECTED,
    diff_against_paper,
    diff_manifests,
    render_diff,
)
from repro.obs.report import run_report


@pytest.fixture(scope="module")
def manifest():
    return run_report(subset=("wc", "spline"))["manifest"]


def _perturb(manifest, name="wc", machine="baseline",
             metric="instructions", delta=500):
    doc = copy.deepcopy(manifest)
    for entry in doc["programs"]:
        if entry["name"] == name:
            entry[machine][metric] += delta
    return doc


class TestDiffManifests:
    def test_identical_runs_are_clean(self, manifest):
        result = diff_manifests(manifest, manifest)
        assert result.rows and not result.breaches
        assert result.exit_code == 0
        assert all(row["delta"] == 0 for row in result.rows)

    def test_perturbation_breaches_exact_gate(self, manifest):
        result = diff_manifests(manifest, _perturb(manifest))
        assert result.exit_code == 1
        breach = result.breaches[0]
        assert (breach["name"], breach["machine"], breach["metric"]) == (
            "wc", "baseline", "instructions"
        )
        assert breach["delta"] == 500

    def test_threshold_tolerates_small_drift(self, manifest):
        # 500 extra instructions on wc's ~56k baseline count is under 1%.
        result = diff_manifests(manifest, _perturb(manifest), threshold=0.05)
        assert result.exit_code == 0
        assert any(row["delta"] for row in result.rows)

    def test_asymmetric_workloads_warn_not_breach(self, manifest):
        smaller = copy.deepcopy(manifest)
        smaller["programs"] = [
            e for e in smaller["programs"] if e["name"] != "spline"
        ]
        result = diff_manifests(manifest, smaller, label_a="A", label_b="B")
        assert any("spline" in w and "only in A" in w for w in result.warnings)
        assert result.exit_code == 0

    def test_labels_carry_provenance(self, manifest):
        result = diff_manifests(manifest, manifest, label_a="before.json")
        sha = (manifest.get("provenance") or {}).get("git_sha")
        if sha:
            assert sha[:12] in result.label_a


class TestDiffAgainstPaper:
    def test_fresh_run_reproduces_pinned_table(self, manifest):
        result = diff_against_paper(manifest)
        # Two workloads x two machines x two metrics.
        assert len(result.rows) == 8
        assert result.exit_code == 0

    def test_pinned_values_match_fixture(self, manifest):
        entry = {e["name"]: e for e in manifest["programs"]}["wc"]
        expected = TABLE1_EXPECTED["wc"]
        assert entry["baseline"]["instructions"] == expected[0]
        assert entry["branchreg"]["instructions"] == expected[1]

    def test_drift_fails_the_gate(self, manifest):
        result = diff_against_paper(_perturb(manifest, delta=1))
        assert result.exit_code == 1

    def test_paper_claims_are_notes_not_rows(self, manifest):
        result = diff_against_paper(manifest)
        assert len(result.notes) == 3
        assert all("informational" in note for note in result.notes)

    def test_unpinned_workload_warns(self, manifest):
        doc = copy.deepcopy(manifest)
        doc["programs"].append(
            json.loads(json.dumps(doc["programs"][0], default=str))
        )
        doc["programs"][-1]["name"] = "mystery"
        result = diff_against_paper(doc)
        assert any("mystery" in w for w in result.warnings)

    def test_pinned_table_covers_all_19_workloads(self):
        from repro.workloads import all_workloads

        assert set(TABLE1_EXPECTED) == {w.name for w in all_workloads()}


class TestRenderDiff:
    def test_clean_render(self, manifest):
        text = render_diff(diff_manifests(manifest, manifest))
        assert "no changes" in text
        assert text.endswith("result: OK")

    def test_breach_render(self, manifest):
        text = render_diff(diff_manifests(manifest, _perturb(manifest)))
        assert "BREACH" in text
        assert text.endswith("result: DRIFT DETECTED")

    def test_max_rows_caps_output(self, manifest):
        perturbed = copy.deepcopy(manifest)
        for entry in perturbed["programs"]:
            entry["baseline"]["instructions"] += 1
            entry["branchreg"]["instructions"] += 1
        text = render_diff(
            diff_manifests(manifest, perturbed), max_rows=1
        )
        assert text.count("BREACH") == 1
