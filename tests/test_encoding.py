"""Tests for the Figure 10/11 instruction encoders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codegen.common import MInstr, mnoop
from repro.errors import EncodingError
from repro.lang.frontend import compile_to_ir
from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.machine.encoding import (
    BASE_BRANCH,
    BASE_COMPUTE_IMM,
    BASE_COMPUTE_REG,
    BASE_SETHI,
    BR_BTA,
    BR_CMPSET,
    BR_COMPUTE_IMM,
    BR_COMPUTE_REG,
    BR_SETHI,
    BaselineEncoder,
    BranchRegEncoder,
    Format,
    Field,
    OPCODES,
    validate_program,
)
from repro.rtl.operand import Imm, Reg


class TestFormatPacking:
    def test_formats_are_32_bits(self):
        # Constructing a mis-sized format raises.
        with pytest.raises(ValueError):
            Format("bad", [Field("op", 6), Field("x", 10)])

    def test_pack_unpack_roundtrip(self):
        values = {"op": 35, "cond": 3, "i": 0, "disp": -1000}
        word = BASE_BRANCH.pack(**values)
        assert BASE_BRANCH.unpack(word) == values

    def test_signed_field_range_enforced(self):
        with pytest.raises(EncodingError):
            BASE_COMPUTE_IMM.pack(op=1, rd=0, rs1=0, i=0, imm=5000)

    def test_unsigned_field_range_enforced(self):
        with pytest.raises(EncodingError):
            BASE_BRANCH.pack(op=99, cond=0, i=0, disp=0)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=-(2**15), max_value=2**15 - 1),
        st.integers(min_value=0, max_value=7),
    )
    def test_bta_roundtrip_property(self, op, bd, disp, br):
        word = BR_BTA.pack(op=op, bd=bd, disp=disp, pad=0, br=br)
        fields = BR_BTA.unpack(word)
        assert fields["op"] == op
        assert fields["bd"] == bd
        assert fields["disp"] == disp
        assert fields["br"] == br

    def test_word_fits_32_bits(self):
        word = BR_CMPSET.pack(op=45, cond=2, rs1=3, i=0, imm=-1, btrue=4, br=7)
        assert 0 <= word < 2**32


class TestBaselineEncoder:
    def setup_method(self):
        self.enc = BaselineEncoder()

    def test_add_reg_reg(self):
        ins = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Reg("r", 3)])
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert op == "add"
        assert fields["rd"] == 1 and fields["rs1"] == 2 and fields["rs2"] == 3

    def test_add_reg_imm(self):
        ins = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(-7)])
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert fields["imm"] == -7 and fields["i"] == 0

    def test_imm_13bit_limit(self):
        ok = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(4095)])
        self.enc.encode(ok)
        bad = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(4096)])
        with pytest.raises(EncodingError):
            self.enc.encode(bad)

    def test_register_31_ok_32_would_not_exist(self):
        ins = MInstr("mov", dst=Reg("r", 31), srcs=[Reg("r", 0)])
        self.enc.encode(ins)
        with pytest.raises(EncodingError):
            self.enc.encode(MInstr("mov", dst=Reg("r", 32), srcs=[Reg("r", 0)]))

    def test_branch_displacement(self):
        ins = MInstr("bcc", cond="eq")
        word = self.enc.encode(ins, disp_words=-100)
        op, fields = self.enc.decode(word)
        assert op == "bcc" and fields["disp"] == -100

    def test_store_encodes_value_in_rd(self):
        ins = MInstr("sw", srcs=[Reg("r", 5), Reg("r", 31), Imm(16)])
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert fields["rd"] == 5 and fields["rs1"] == 31 and fields["imm"] == 16

    def test_noop(self):
        op, _f = self.enc.decode(self.enc.encode(mnoop()))
        assert op == "noop"


class TestBranchRegEncoder:
    def setup_method(self):
        self.enc = BranchRegEncoder()

    def test_every_instruction_carries_br(self):
        ins = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(3)], br=5)
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert fields["br"] == 5

    def test_imm_10bit_limit(self):
        ok = MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(511)])
        self.enc.encode(ok)
        with pytest.raises(EncodingError):
            self.enc.encode(
                MInstr("add", dst=Reg("r", 1), srcs=[Reg("r", 2), Imm(512)])
            )

    def test_only_16_registers(self):
        with pytest.raises(EncodingError):
            self.enc.encode(MInstr("mov", dst=Reg("r", 16), srcs=[Reg("r", 0)]))

    def test_cmpset_roundtrip(self):
        ins = MInstr(
            "cmpset",
            dst=Reg("b", 7),
            srcs=[Reg("r", 5), Imm(0)],
            cond="lt",
            btrue=2,
        )
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert op == "cmpset"
        assert fields["btrue"] == 2 and fields["imm"] == 0

    def test_bta_displacement_16bit(self):
        ins = MInstr("bta", dst=Reg("b", 3))
        self.enc.encode(ins, disp_words=32767)
        with pytest.raises(EncodingError):
            self.enc.encode(ins, disp_words=32768)

    def test_bld_bst(self):
        bld = MInstr("bld", dst=Reg("b", 2), srcs=[Reg("r", 15), Imm(8)])
        bst = MInstr("bst", srcs=[Reg("b", 2), Reg("r", 15), Imm(8)])
        assert self.enc.decode(self.enc.encode(bld))[0] == "bld"
        assert self.enc.decode(self.enc.encode(bst))[0] == "bst"

    def test_bmov(self):
        ins = MInstr("bmov", dst=Reg("b", 1), srcs=[Reg("b", 7)])
        op, fields = self.enc.decode(self.enc.encode(ins))
        assert op == "bmov"


class TestWholeProgramValidation:
    def test_every_workload_program_encodes(self):
        # A light version of the full-suite check: one program per class.
        from repro.workloads import workload

        for name in ("wc", "sieve", "whetstone"):
            w = workload(name)
            assert validate_program(generate_baseline(compile_to_ir(w.source))) > 0
            assert validate_program(generate_branchreg(compile_to_ir(w.source))) > 0

    def test_opcode_numbers_unique(self):
        assert len(set(OPCODES.values())) == len(OPCODES)

    def test_opcode_fits_6_bits(self):
        assert max(OPCODES.values()) < 64


# ---- encode -> decode -> encode identity (property) ------------------------

_ALL_FORMATS = (
    BASE_BRANCH, BASE_SETHI, BASE_COMPUTE_IMM, BASE_COMPUTE_REG,
    BR_BTA, BR_CMPSET, BR_SETHI, BR_COMPUTE_IMM, BR_COMPUTE_REG,
)

_FORMATS_BY_KEYS = {
    frozenset(f.name for f in fmt.fields): fmt for fmt in _ALL_FORMATS
}
# Key-set lookup is how the round-trip test re-packs decoded fields, so
# the key sets must be unambiguous across all nine formats.
assert len(_FORMATS_BY_KEYS) == len(_ALL_FORMATS)


@st.composite
def format_values(draw):
    """A format plus a full set of in-range values for its fields."""
    fmt = draw(st.sampled_from(_ALL_FORMATS))
    values = {}
    for field in fmt.fields:
        if field.signed:
            half = 1 << (field.bits - 1)
            values[field.name] = draw(
                st.integers(min_value=-half, max_value=half - 1)
            )
        else:
            values[field.name] = draw(
                st.integers(min_value=0, max_value=(1 << field.bits) - 1)
            )
    return fmt, values


class TestEncodeDecodeEncodeIdentity:
    """The bit-exactness property behind both encoders: packing is a
    bijection between in-range field values and 32-bit words, and every
    instruction either machine's code generator emits survives
    encode -> decode -> encode unchanged."""

    @given(format_values())
    def test_pack_unpack_pack_identity(self, fv):
        fmt, values = fv
        word = fmt.pack(**values)
        assert 0 <= word < 2**32
        unpacked = fmt.unpack(word)
        assert unpacked == values
        assert fmt.pack(**unpacked) == word

    def _roundtrip_program(self, mprog, encoder):
        checked = 0
        for ins in mprog.all_instrs():
            if ins.is_label():
                continue
            word = encoder.encode(ins)
            op, fields = encoder.decode(word)
            assert op == ins.op, (
                "0x%08x decoded as %r, encoded from %r" % (word, op, ins.op)
            )
            fmt = _FORMATS_BY_KEYS[frozenset(fields)]
            assert fmt.pack(**fields) == word
            checked += 1
        return checked

    def test_baseline_workload_instructions_roundtrip(self):
        from repro.workloads import workload

        for name in ("wc", "sieve", "whetstone"):
            mprog = generate_baseline(compile_to_ir(workload(name).source))
            assert self._roundtrip_program(mprog, BaselineEncoder()) > 0

    def test_branchreg_workload_instructions_roundtrip(self):
        from repro.workloads import workload

        for name in ("wc", "sieve", "whetstone"):
            mprog = generate_branchreg(compile_to_ir(workload(name).source))
            assert self._roundtrip_program(mprog, BranchRegEncoder()) > 0
