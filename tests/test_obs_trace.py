"""Tests for the tracing layer (repro.obs.trace) and the flamegraph
exporter (repro.obs.flame): context propagation, event stamping, the
Chrome trace-event document, and collapsed-stack reconstruction."""

import pickle

import pytest

from repro.obs import events, trace
from repro.obs.flame import collapsed_stacks, render_flame, run_flame
from repro.obs.manifest import ManifestError
from repro.obs.spans import SpanRecorder


@pytest.fixture
def sink():
    previous = events.set_sink(events.MemorySink())
    yield events.get_sink()
    events.set_sink(previous)


@pytest.fixture
def traced():
    token = trace.start_trace()
    yield trace.current_context()[0]
    trace.end_trace(token)


class TestTraceContext:
    def test_inactive_by_default(self):
        assert not trace.active()
        assert trace.current_context() is None
        assert trace.push_span() is None
        trace.pop_span(None)  # must not raise

    def test_start_and_end_restore(self):
        token = trace.start_trace()
        assert trace.active()
        trace.end_trace(token)
        assert not trace.active()

    def test_nested_traces_restore_outer(self):
        outer = trace.start_trace()
        outer_id = trace.current_context()[0]
        inner = trace.start_trace()
        assert trace.current_context()[0] != outer_id
        trace.end_trace(inner)
        assert trace.current_context()[0] == outer_id
        trace.end_trace(outer)

    def test_span_stack_nests(self, traced):
        parent = trace.push_span()
        child = trace.push_span()
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert trace.current_context() == (traced, child.span_id)
        trace.pop_span(child)
        assert trace.current_context() == (traced, parent.span_id)
        trace.pop_span(parent)
        assert trace.current_context() == (traced, None)

    def test_unbalanced_pop_drops_only_that_span(self, traced):
        a = trace.push_span()
        b = trace.push_span()
        trace.pop_span(a)  # out of order
        assert trace.current_context() == (traced, b.span_id)
        trace.pop_span(b)

    def test_task_context_is_picklable(self, traced):
        span = trace.push_span()
        ctx = trace.task_context()
        assert pickle.loads(pickle.dumps(ctx)) == (traced, span.span_id)
        trace.pop_span(span)

    def test_worker_side_activation_nests_under_parent(self, traced):
        parent = trace.push_span()
        ctx = trace.task_context()
        # What _run_workload_task does on the other side of the pickle.
        worker_token = trace.start_trace(
            trace_id=ctx[0], parent_span_id=ctx[1]
        )
        try:
            child = trace.push_span()
            assert child.trace_id == traced
            assert child.parent_id == parent.span_id
            trace.pop_span(child)
        finally:
            trace.end_trace(worker_token)
        trace.pop_span(parent)


class TestSpanEventStamps:
    def test_span_event_carries_own_identity(self, sink, traced):
        rec = SpanRecorder()
        with rec.span("workload", name="wc"):
            events.emit("emu.start", machine="baseline")
        span_event = sink.by_type("span")[0]
        instant = sink.by_type("emu.start")[0]
        assert span_event["trace_id"] == traced
        assert "span_id" in span_event
        assert "parent_id" not in span_event  # top-level span
        # The instant nests inside the span, not beside it.
        assert instant["parent_id"] == span_event["span_id"]

    def test_nested_spans_link_parent(self, sink, traced):
        rec = SpanRecorder()
        with rec.span("suite"):
            with rec.span("workload", name="wc"):
                pass
        inner, outer = sink.by_type("span")  # inner closes first
        assert inner["labels"] == {"name": "wc"}
        assert inner["parent_id"] == outer["span_id"]

    def test_untraced_spans_unstamped(self, sink):
        rec = SpanRecorder()
        with rec.span("workload", name="wc"):
            pass
        assert "trace_id" not in sink.by_type("span")[0]


class TestChromeExport:
    def _capture(self):
        sink = events.MemorySink()
        previous = events.set_sink(sink)
        token = trace.start_trace()
        rec = SpanRecorder()
        try:
            with rec.span("suite", mode="serial"):
                with rec.span("workload", name="wc"):
                    events.emit("emu.start", machine="baseline")
        finally:
            trace.end_trace(token)
            events.set_sink(previous)
        return sink.events

    def test_document_shape_and_schema(self):
        doc = trace.export_chrome_trace(self._capture())
        assert doc["schema"] == trace.TRACE_SCHEMA_ID
        phases = sorted(ev["ph"] for ev in doc["traceEvents"])
        assert phases == ["M", "X", "X", "i"]
        trace.validate_trace(doc)

    def test_slices_nest_by_span_ids(self):
        doc = trace.export_chrome_trace(self._capture())
        slices = {
            ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        suite = slices["suite:serial"]
        workload = slices["workload:wc"]
        assert workload["args"]["parent_id"] == suite["args"]["span_id"]
        assert workload["args"]["name"] == "wc"
        assert workload["dur"] <= suite["dur"]

    def test_empty_stream_still_validates(self):
        doc = trace.export_chrome_trace([])
        assert doc["traceEvents"] == []
        trace.validate_trace(doc)

    def test_validation_rejects_bad_phase(self):
        doc = trace.export_chrome_trace([])
        doc["traceEvents"] = [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}
        ]
        with pytest.raises(ManifestError):
            trace.validate_trace(doc)

    def test_write_and_load_roundtrip(self, tmp_path):
        doc = trace.export_chrome_trace(self._capture())
        path = trace.write_trace(doc, out=str(tmp_path / "t.json"))
        assert trace.load_trace(path) == doc


class TestRunTrace:
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_suite_trace_covers_workloads(self, jobs):
        doc = trace.run_trace(subset=("wc", "sieve"), jobs=jobs)
        slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        by_name = {}
        for ev in slices:
            by_name.setdefault(ev["name"], ev)
        suite = by_name["suite:parallel" if jobs > 1 else "suite:serial"]
        for workload in ("wc", "sieve"):
            ev = by_name["workload:%s" % workload]
            assert ev["args"]["parent_id"] == suite["args"]["span_id"]
        # One trace id spans every process.
        assert len(doc["otherData"]["trace_ids"]) == 1
        if jobs > 1:
            assert len({ev["pid"] for ev in slices}) > 1

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            trace.run_trace(subset=("nope",))

    def test_leaves_no_context_or_sink_behind(self):
        before = events.get_sink()
        trace.run_trace(subset=("wc",), jobs=1)
        assert not trace.active()
        assert events.get_sink() is before


class TestFlame:
    def test_collapsed_stacks_from_profiler(self):
        from repro.obs.profile import run_profile

        run = run_profile("wc", "branchreg")
        stacks = collapsed_stacks(run.profiler, run.profile)
        assert stacks
        # Every frame path is rooted at the entry stub and the total
        # credit approximates the dynamic instruction count.
        assert all(stack.startswith("__start") for stack in stacks)
        total = sum(stacks.values())
        executed = sum(row["count"] for row in run.profile["functions"])
        assert total == pytest.approx(executed, rel=0.01)

    def test_render_widest_first(self):
        text = render_flame({"a;b": 5, "a;c": 50, "a": 1})
        assert text.splitlines() == ["a;c 50", "a;b 5", "a 1"]

    def test_run_flame_nonempty_per_workload(self):
        results = run_flame(subset=("wc", "sieve"))
        assert set(results) == {"wc", "sieve"}
        assert all(results.values())

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            run_flame(subset=("nope",))


class TestCliVerbs:
    def test_trace_verb_writes_validated_doc(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "trace.json")
        rc = main(["trace", "--subset", "wc", "--out", out])
        assert rc == 0
        assert "trace:" in capsys.readouterr().out
        doc = trace.load_trace(out)
        assert any(
            ev["name"] == "workload:wc"
            for ev in doc["traceEvents"]
            if ev["ph"] == "X"
        )

    def test_trace_verb_from_events(self, tmp_path, capsys):
        from repro.cli import main

        events_path = tmp_path / "events.jsonl"
        events_path.write_text(
            '{"type": "span", "name": "suite", "t_mono": 1.0, '
            '"duration_s": 0.5, "pid": 1, "seq": 0}\n'
        )
        out = str(tmp_path / "trace.json")
        rc = main(["trace", "--from-events", str(events_path), "--out", out])
        assert rc == 0
        doc = trace.load_trace(out)
        assert doc["traceEvents"][0]["ph"] == "X"

    def test_trace_verb_rejects_bad_events_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", "--from-events", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_flame_verb_writes_stacks(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "flame.txt")
        rc = main(["flame", "--subset", "wc", "--out", out])
        assert rc == 0
        lines = open(out).read().strip().splitlines()
        assert lines and all(
            line.startswith("wc;") or line.split(" ")[0] == "wc"
            for line in lines
        )

    def test_unknown_workload_rejected(self, capsys):
        from repro.cli import main

        assert main(["trace", "--subset", "nope"]) == 2
        assert main(["flame", "--subset", "nope"]) == 2
