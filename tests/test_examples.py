"""Smoke tests: the shipped examples run and print sensible output."""

import runpy
import sys

import pytest


def run_example(name, capsys):
    sys.path.insert(0, "examples")
    try:
        module = runpy.run_path("examples/%s.py" % name, run_name="not_main")
        module["main"]()
    finally:
        sys.path.pop(0)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "longest chain below 60" in out
        assert "fewer instructions" in out

    def test_strlen_paper_example(self, capsys):
        out = run_example("strlen_paper_example", capsys)
        assert "Figure 3" in out and "Figure 4" in out
        assert "b[0]=b[" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload", capsys)
        assert "events" in out
        assert "ORDER VIOLATION" not in out
        assert "3-stage cycles" in out

    def test_isa_explorer(self, capsys):
        out = run_example("isa_explorer", capsys)
        assert "0x" in out
        assert "branch-register machine" in out

    @pytest.mark.slow
    def test_pipeline_cache_study(self, capsys):
        out = run_example("pipeline_cache_study", capsys)
        assert "stages" in out
        assert "missrate" in out
