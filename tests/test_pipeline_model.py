"""Tests for the Section 7 pipeline cost models and Figure 5-9 logic."""

from collections import Counter

import pytest

from repro.emu.stats import RunStats
from repro.pipeline.diagrams import (
    conditional_diagram,
    fig6_actions,
    fig8_actions,
    fig9_table,
    unconditional_diagram,
)
from repro.pipeline.model import (
    baseline_cycles,
    branchreg_cycles,
    compare_penalty,
    delayed_transfer_fraction,
    estimate_all,
    no_delay_cycles,
    prefetch_penalty,
)


def make_stats(instructions=1000, uncond=50, cond=50, gaps=None, joint=None):
    stats = RunStats(machine="branchreg")
    stats.instructions = instructions
    stats.uncond_transfers = uncond
    stats.cond_transfers = cond
    stats.prefetch_gap = Counter(gaps or {})
    stats.cond_joint = Counter(joint or {})
    return stats


class TestPenaltyFunctions:
    def test_ready_is_free(self):
        assert prefetch_penalty(-1, 3) == 0
        assert prefetch_penalty(-1, 10) == 0

    def test_figure9_three_stages(self):
        # N=3: distance >= 2 hides the prefetch entirely.
        assert prefetch_penalty(2, 3) == 0
        assert prefetch_penalty(1, 3) == 1
        assert prefetch_penalty(5, 3) == 0

    def test_deeper_pipes_need_more_distance(self):
        assert prefetch_penalty(2, 4) == 1
        assert prefetch_penalty(3, 4) == 0

    def test_compare_penalty_n3_is_zero(self):
        assert compare_penalty(1, 3) == 0

    def test_compare_penalty_n4_adjacent(self):
        assert compare_penalty(1, 4) == 1
        assert compare_penalty(2, 4) == 0


class TestMachineModels:
    def test_no_delay_machine(self):
        stats = make_stats()
        est = no_delay_cycles(stats, stages=3)
        assert est.cycles == 1000 + 100 * 2

    def test_baseline_one_cycle_per_transfer_at_n3(self):
        # Section 7: "each branch on the baseline machine would require at
        # least a one-stage delay".
        stats = make_stats()
        est = baseline_cycles(stats, stages=3)
        assert est.cycles == 1000 + 100

    def test_baseline_deeper_pipe(self):
        stats = make_stats()
        assert baseline_cycles(stats, stages=4).transfer_delays == 200

    def test_branchreg_all_hoisted_is_free_at_n3(self):
        stats = make_stats(gaps={8: 100})
        est = branchreg_cycles(stats, stages=3)
        assert est.transfer_delays == 0

    def test_branchreg_adjacent_calc_pays(self):
        stats = make_stats(uncond=100, cond=0, gaps={1: 100})
        est = branchreg_cycles(stats, stages=3)
        assert est.transfer_delays == 100

    def test_conditional_charged_max_of_penalties(self):
        # One conditional transfer: prefetch gap 1 (penalty 1 at N=3) and
        # compare gap 1 (penalty 0 at N=3, 1 at N=4).
        stats = make_stats(
            instructions=10, uncond=0, cond=1,
            gaps={1: 1}, joint={(1, 1): 1},
        )
        assert branchreg_cycles(stats, stages=3).transfer_delays == 1
        # At N=4: prefetch penalty 2, compare penalty 1 -> max 2.
        assert branchreg_cycles(stats, stages=4).transfer_delays == 2

    def test_sequential_conditional_free_at_n3(self):
        stats = make_stats(
            instructions=10, uncond=0, cond=1,
            gaps={-1: 1}, joint={(-1, 1): 1},
        )
        assert branchreg_cycles(stats, stages=3).transfer_delays == 0

    def test_delayed_fraction(self):
        stats = make_stats(
            uncond=100, cond=0, gaps={1: 25, 8: 75},
        )
        assert delayed_transfer_fraction(stats, stages=3) == 0.25

    def test_estimate_all_structure(self):
        stats_base = make_stats()
        stats_br = make_stats(gaps={8: 100})
        est = estimate_all(stats_base, stats_br, stages=3)
        assert est["baseline"].cycles > est["branchreg"].cycles
        assert 0.0 <= est["delayed_fraction"] <= 1.0
        assert est["saving_vs_baseline"] > 0


class TestDiagrams:
    @pytest.mark.parametrize(
        "machine,stages,expected",
        [
            ("no-delay", 3, 2), ("delayed", 3, 1), ("branchreg", 3, 0),
            ("no-delay", 4, 3), ("delayed", 4, 2), ("branchreg", 4, 0),
        ],
    )
    def test_fig5_delays(self, machine, stages, expected):
        _diagram, delay = unconditional_diagram(machine, stages)
        assert delay == expected

    @pytest.mark.parametrize(
        "machine,stages,expected",
        [
            ("no-delay", 3, 2), ("delayed", 3, 1), ("branchreg", 3, 0),
            ("no-delay", 4, 3), ("delayed", 4, 2), ("branchreg", 4, 1),
        ],
    )
    def test_fig7_delays(self, machine, stages, expected):
        _diagram, delay = conditional_diagram(machine, stages)
        assert delay == expected

    def test_diagram_text_mentions_stages(self):
        text, _ = unconditional_diagram("branchreg", 3)
        assert "JUMP" in text and "TARGET" in text

    def test_unknown_machine_raises(self):
        with pytest.raises(ValueError):
            unconditional_diagram("vliw", 3)

    def test_fig6_has_three_cycles(self):
        assert len(fig6_actions()) == 3

    def test_fig8_has_four_cycles(self):
        assert len(fig8_actions()) == 4

    def test_fig9_min_safe_distance_is_two_at_n3(self):
        table = fig9_table(stages=3, cache_delay=1)
        assert dict(table)[1] == 1
        assert dict(table)[2] == 0
