"""Tests for the AST -> IR lowering (structural, complementing the
execution battery in test_exec_semantics.py)."""

from repro.lang.frontend import compile_to_ir
from repro.rtl.operand import FLT, INT, Imm


def fn_of(source, name="main"):
    return compile_to_ir(source).functions[name]


def ops(fn):
    return [i.op for i in fn.instrs if not i.is_label()]


class TestStorageAssignment:
    def test_scalar_local_stays_in_register(self):
        fn = fn_of("int main() { int a = 1; return a; }")
        assert not fn.locals  # no frame traffic needed

    def test_array_gets_frame_slot(self):
        fn = fn_of("int main() { int a[4]; a[0] = 1; return a[0]; }")
        assert any(local.size == 16 for local in fn.locals)

    def test_addressed_scalar_gets_frame_slot(self):
        fn = fn_of("int main() { int a; int *p = &a; *p = 3; return a; }")
        assert fn.locals

    def test_addressed_param_spilled_to_frame(self):
        src = """
        int deref_arg(int x) { int *p = &x; return *p; }
        int main() { return deref_arg(7); }
        """
        fn = fn_of(src, "deref_arg")
        assert fn.locals
        assert "sw" in ops(fn)  # incoming argument stored to its home


class TestExpressionLowering:
    def test_constant_folding_at_emit(self):
        fn = fn_of("int main() { return 2 + 3; }")
        lis = [i for i in fn.instrs if i.op == "li"]
        assert any(i.srcs[0].value == 5 for i in lis)

    def test_pointer_index_scales_by_element_size(self):
        fn = fn_of(
            "int a[4]; int main() { int i; i = getchar(); return a[i]; }"
        )
        assert "shl" in ops(fn)  # i << 2

    def test_char_index_not_scaled(self):
        fn = fn_of(
            "char a[4]; int main() { int i; i = getchar(); return a[i]; }"
        )
        assert "shl" not in ops(fn)

    def test_char_load_uses_lb(self):
        fn = fn_of("char g; int main() { return g; }")
        assert "lb" in ops(fn)

    def test_float_ops_use_float_opcodes(self):
        fn = fn_of("int main() { float a = 1.0; float b = a * 2.0; return (int) b; }")
        assert "fmul" in ops(fn)
        assert "cvtfi" in ops(fn)

    def test_float_constants_from_pool(self):
        prog = compile_to_ir("int main() { float x = 1.25; return (int) x; }")
        pools = [g for g in prog.globals.values() if g.elem == "float"]
        assert pools
        assert "lf" in ops(prog.functions["main"])

    def test_division_not_strength_reduced_blindly(self):
        # Signed division by power of two is NOT a plain shift in C.
        fn = fn_of("int main() { int a; a = getchar(); return a / 2; }")
        assert "div" in ops(fn)

    def test_mul_by_constant_power_of_two_after_optimizer(self):
        from repro.opt.pipeline import optimize_function

        fn = fn_of("int main() { int a; a = getchar(); return a * 16; }")
        optimize_function(fn)
        o = ops(fn)
        assert "shl" in o and "mul" not in o


class TestControlLowering:
    def test_while_is_rotated(self):
        # Rotated loops: entry jump to the test, body first in layout
        # (the Figure 3 shape: jmp L17; L18: body; L17: test).
        fn = fn_of("int main() { int i = 0; while (i < 5) i++; return i; }")
        jumps = [i for i in fn.instrs if i.op == "jmp"]
        assert any(j.target.name.startswith("Ltest") for j in jumps)

    def test_one_branch_per_loop_iteration(self):
        fn = fn_of("int main() { int i = 0; while (i < 5) i++; return i; }")
        # The loop body must contain exactly one conditional branch.
        brs = [i for i in fn.instrs if i.op == "br"]
        assert len(brs) == 1

    def test_dense_switch_emits_ijmp_and_table(self):
        src = """
        int main() {
            int x; x = getchar();
            switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4; default: return 0;
            }
        }
        """
        prog = compile_to_ir(src)
        assert "ijmp" in ops(prog.functions["main"])
        assert any(g.elem == "label" for g in prog.globals.values())

    def test_sparse_switch_uses_compare_chain(self):
        src = """
        int main() {
            int x; x = getchar();
            switch (x) { case 1: return 1; case 100: return 2; }
            return 0;
        }
        """
        fn = fn_of(src)
        assert "ijmp" not in ops(fn)

    def test_ijmp_records_possible_targets(self):
        src = """
        int main() {
            int x; x = getchar();
            switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4;
            }
            return 0;
        }
        """
        fn = fn_of(src)
        ijmps = [i for i in fn.instrs if i.op == "ijmp"]
        assert ijmps and len(ijmps[0].args) >= 4

    def test_call_becomes_trap_for_builtin(self):
        fn = fn_of("int main() { putchar(65); return 0; }")
        o = ops(fn)
        assert "trap" in o and "call" not in o

    def test_library_function_is_real_call(self):
        fn = fn_of('int main() { return strlen("abc"); }')
        assert "call" in ops(fn)


class TestProgramLowering:
    def test_string_literals_interned_once(self):
        prog = compile_to_ir(
            'int main() { print_str("dup"); print_str("dup"); return 0; }'
        )
        strings = [n for n in prog.globals if n.startswith("__str")]
        assert len(strings) == 1

    def test_unused_stdlib_trimmed(self):
        prog = compile_to_ir("int main() { return 0; }")
        assert "f_sin" not in prog.functions
        assert "print_float" not in prog.functions

    def test_used_stdlib_kept_transitively(self):
        prog = compile_to_ir(
            "int main() { print_float(1.0); return 0; }"
        )
        assert "print_float" in prog.functions
        assert "print_int" in prog.functions  # called by print_float

    def test_global_word_initializer(self):
        prog = compile_to_ir("int g[3] = {1, -2, 3}; int main() { return g[0]; }")
        assert prog.globals["g"].init == [1, -2, 3]

    def test_global_char_string_initializer(self):
        prog = compile_to_ir('char s[8] = "hi"; int main() { return s[0]; }')
        g = prog.globals["s"]
        assert g.elem == "byte"
        assert g.init.startswith(b"hi\x00")
        assert len(g.init) == 8

    def test_negative_scalar_initializer(self):
        prog = compile_to_ir("int g = -42; int main() { return g; }")
        assert prog.globals["g"].init == [-42]
