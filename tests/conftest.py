"""Shared test helpers: compile-and-run on both machines."""

import pytest

from repro.ease.environment import run_pair


def run_both(source, stdin=b"", limit=2_000_000, branchreg_options=None):
    """Compile and run on both machines; asserts they agree and returns
    the common output as text."""
    pair = run_pair(
        source,
        stdin=stdin,
        limit=limit,
        name="test",
        branchreg_options=branchreg_options,
    )
    return pair


@pytest.fixture
def both():
    """Fixture returning a runner: both(source, stdin) -> output text."""

    def runner(source, stdin=b"", **kwargs):
        return run_both(source, stdin=stdin, **kwargs).output.decode("latin-1")

    return runner


@pytest.fixture
def both_pair():
    def runner(source, stdin=b"", **kwargs):
        return run_both(source, stdin=stdin, **kwargs)

    return runner
