"""The differential machine oracle and the seeded fuzzer."""

import pytest

from repro.errors import MachineDivergence, ReproError
from repro.fault.oracle import (
    _attribute,
    check_workloads,
    fuzz_differential,
    run_differential,
)
from repro.fault.progen import expected_output, program_source, random_program

SOURCE = """
int g;
int main() {
    g = 41;
    g = g + 1;
    print_int(g); putchar(10);
    return 0;
}
"""


class TestRunDifferential:
    def test_equivalent_program_passes(self):
        result = run_differential(SOURCE, name="answer")
        assert result.output == b"42\n"
        assert result.baseline.exit_code == result.branchreg.exit_code == 0
        assert result.data_bytes >= 4  # at least the global g

    def test_data_segment_is_compared(self):
        # both machines store 42 into g; the oracle sees identical bytes
        result = run_differential(SOURCE)
        assert result.data_bytes > 0

    def test_divergence_is_typed_with_detail(self, monkeypatch):
        # force a divergence by corrupting the branchreg run's output
        import repro.fault.oracle as oracle_mod

        real = oracle_mod.run_branchreg

        def lying_run(image, **kwargs):
            stats = real(image, **kwargs)
            stats.output = stats.output + b"oops"
            return stats

        monkeypatch.setattr(oracle_mod, "run_branchreg", lying_run)
        with pytest.raises(MachineDivergence) as info:
            run_differential(SOURCE, name="lying")
        assert "output" in info.value.mismatches
        assert "branchreg_output" in info.value.detail

    def test_memory_divergence_attributes_symbol(self, monkeypatch):
        import repro.fault.oracle as oracle_mod

        real = oracle_mod.run_branchreg

        def corrupting_run(image, **kwargs):
            stats = real(image, **kwargs)
            image.memory.store_word(image.symbols["g"], 13)
            return stats

        monkeypatch.setattr(oracle_mod, "run_branchreg", corrupting_run)
        with pytest.raises(MachineDivergence) as info:
            run_differential(SOURCE, name="corrupt")
        assert "memory" in info.value.mismatches
        assert info.value.detail["symbol"] == "g"

    def test_jump_tables_are_excluded_from_memory_check(self):
        # switch lowering emits an __jtabN global of code addresses;
        # text layouts differ between machines, so those bytes are
        # machine-specific and must not count as divergence (vpcc
        # regression)
        source = """
        int g;
        int pick(int n) {
            switch (n) {
            case 0: return 10;
            case 1: return 20;
            case 2: return 30;
            case 3: return 40;
            default: return -1;
            }
        }
        int main() {
            g = pick(2);
            print_int(g); putchar(10);
            return 0;
        }
        """
        result = run_differential(source, name="switcher")
        assert result.output == b"30\n"

    def test_attribute_names_owning_symbol(self):
        class FakeImage:
            symbols = {"a": 0x100000, "b": 0x100010}

        assert _attribute(FakeImage(), 0x100004) == "a"
        assert _attribute(FakeImage(), 0x100010) == "b"


class TestCheckWorkloads:
    def test_subset_equivalent(self):
        results = check_workloads(names=("wc", "grep"))
        assert sorted(r.name for r in results) == ["grep", "wc"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            check_workloads(names=("wc", "nope"))


class TestFuzzer:
    def test_generation_is_seed_deterministic(self):
        import random

        first = random_program(random.Random(99))
        second = random_program(random.Random(99))
        assert first == second
        assert program_source(first) == program_source(second)

    def test_python_model_matches_rendered_semantics(self):
        import random

        stmts = random_program(random.Random(3))
        source = program_source(stmts)
        assert "int main()" in source
        # expected_output must be a stable pure function of the tree
        assert expected_output(stmts) == expected_output(stmts)

    def test_fuzz_passes_on_fixed_seeds(self):
        report = fuzz_differential(count=25, seed=20260806)
        assert report["checked"] == 25
        assert report["failures"] == []

    def test_fuzz_reports_and_minimises_failures(self, tmp_path, monkeypatch):
        # break the oracle itself so every generated case "fails", then
        # check the report plumbing: minimisation ran, artifact written
        import repro.fault.oracle as oracle_mod

        def broken_check(stmts, limit):
            raise MachineDivergence("synthetic failure", mismatches=["output"])

        monkeypatch.setattr(oracle_mod, "_check_generated", broken_check)
        report = fuzz_differential(
            count=3, seed=5, artifacts_dir=str(tmp_path), max_failures=2
        )
        assert len(report["failures"]) == 2  # stopped at max_failures
        for record in report["failures"]:
            assert record["error"] == "MachineDivergence"
            assert "int main()" in record["source"]
            assert (tmp_path / record["artifact"].split("/")[-1]).exists()

    def test_fuzz_failure_minimisation_shrinks(self, monkeypatch):
        # a "bug" that triggers whenever the program contains an if
        import repro.fault.oracle as oracle_mod

        real_check = oracle_mod._check_generated

        def picky_check(stmts, limit):
            if _has_if(stmts):
                raise MachineDivergence("if is broken", mismatches=["output"])
            return real_check(stmts, limit)

        def _has_if(stmts):
            for stmt in stmts:
                if stmt[0] == "if":
                    return True
                if stmt[0] == "loop" and _has_if(stmt[2]):
                    return True
                if stmt[0] == "if" and (
                    _has_if(stmt[2]) or (stmt[3] and _has_if(stmt[3]))
                ):
                    return True
            return False

        monkeypatch.setattr(oracle_mod, "_check_generated", picky_check)
        report = fuzz_differential(count=40, seed=1, max_failures=1)
        assert report["failures"], "fuzzer never generated an if in 40 cases?"
        source = report["failures"][0]["source"]
        # the minimised reproducer still has the trigger but little else:
        # the main() template contributes 13 semicolons (inits + prints),
        # so a one-statement if-body means at most 15 total
        assert "if (" in source
        assert source.count(";") <= 15, source
