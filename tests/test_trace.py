"""Tests for the execution tracer."""

import pytest

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.emu.loader import Image
from repro.emu.trace import trace_run
from repro.lang.frontend import compile_to_ir

SRC = """
int twice(int x) { return 2 * x; }
int main() {
    print_int(twice(21));
    putchar(10);
    return 0;
}
"""


@pytest.fixture(scope="module")
def images():
    return {
        "baseline": Image(generate_baseline(compile_to_ir(SRC))),
        "branchreg": Image(generate_branchreg(compile_to_ir(SRC))),
    }


class TestTraceRun:
    def test_stats_match_untraced_run(self, images):
        trace, stats = trace_run(images["branchreg"], "branchreg")
        assert stats.output == b"42\n"
        assert stats.instructions == len(trace.entries) or trace.truncated

    def test_baseline_trace(self, images):
        trace, stats = trace_run(images["baseline"], "baseline")
        assert stats.output == b"42\n"
        assert any("PC=" in e.text for e in trace.entries)

    def test_function_filter(self, images):
        trace, _stats = trace_run(
            images["branchreg"], "branchreg", function="twice"
        )
        mfn = images["branchreg"].mprog.function("twice")
        addrs = {ins.addr for ins in mfn.instrs if not ins.is_label()}
        assert trace.entries
        assert all(e.addr in addrs for e in trace.entries)

    def test_truncation(self, images):
        trace, stats = trace_run(
            images["branchreg"], "branchreg", max_entries=5
        )
        assert len(trace.entries) == 5
        assert trace.truncated
        assert stats.output == b"42\n"  # ran to completion anyway

    def test_carrier_annotated_with_target(self, images):
        trace, _stats = trace_run(images["branchreg"], "branchreg")
        carrier_entries = [e for e in trace.entries if "b[0]=b[" in e.text]
        assert carrier_entries
        assert any(e.detail.startswith("->") for e in carrier_entries)

    def test_max_entries_exact_boundary_not_truncated(self, images):
        # When the recordable instruction count equals max_entries exactly,
        # the trace is complete: truncated must stay False.
        full, _stats = trace_run(images["branchreg"], "branchreg")
        assert not full.truncated
        exact, stats = trace_run(
            images["branchreg"], "branchreg", max_entries=len(full.entries)
        )
        assert len(exact.entries) == len(full.entries)
        assert not exact.truncated
        assert stats.output == b"42\n"

    def test_one_below_boundary_truncates(self, images):
        full, _stats = trace_run(images["branchreg"], "branchreg")
        trace, _stats = trace_run(
            images["branchreg"], "branchreg", max_entries=len(full.entries) - 1
        )
        assert len(trace.entries) == len(full.entries) - 1
        assert trace.truncated

    def test_window_sentinel_stops_recording_but_keeps_running(self, images):
        # Truncating inside a function filter empties the address set:
        # recording stops for good -- even when the PC re-enters the
        # function -- but emulation runs to completion so the stats stay
        # accurate.
        full, _stats = trace_run(
            images["branchreg"], "branchreg", function="twice"
        )
        assert len(full.entries) >= 2
        trace, stats = trace_run(
            images["branchreg"], "branchreg", function="twice", max_entries=1
        )
        assert len(trace.entries) == 1
        assert trace.truncated
        assert stats.output == b"42\n"  # ran to completion
        assert stats.instructions > len(trace.entries)

    def test_limit_stops_emulation_early(self, images):
        # `limit` bounds emulation itself (unlike max_entries, which only
        # bounds recording): the run stops at exactly `limit` executed
        # instructions without setting the truncation flag.
        trace, stats = trace_run(images["branchreg"], "branchreg", limit=5)
        assert stats.instructions == 5
        assert len(trace.entries) == 5
        assert not trace.truncated
        assert stats.output == b""  # never reached the print

    def test_str_rendering(self, images):
        trace, _stats = trace_run(
            images["branchreg"], "branchreg", max_entries=3
        )
        text = str(trace)
        assert "0x" in text and "truncated" in text

    def test_unknown_machine_rejected(self, images):
        with pytest.raises(ValueError):
            trace_run(images["baseline"], "z80")

    def test_unknown_function_rejected(self, images):
        with pytest.raises(KeyError):
            trace_run(images["baseline"], "baseline", function="nope")
