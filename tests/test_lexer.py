"""Tests for the SmallC lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import (
    CHARCONST,
    EOF,
    FLOATCONST,
    ID,
    INTCONST,
    KEYWORD,
    PUNCT,
    STRING,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # strip EOF


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo while bar_2 _x")
        assert [t.kind for t in toks[:-1]] == [KEYWORD, ID, KEYWORD, ID, ID]

    def test_identifier_with_digits(self):
        assert tokenize("abc123")[0].text == "abc123"

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    def test_decimal(self):
        assert tokenize("42")[0].value == 42

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255
        assert tokenize("0x0")[0].value == 0

    def test_octal(self):
        assert tokenize("017")[0].value == 15

    def test_plain_zero_is_decimal(self):
        assert tokenize("0")[0].value == 0

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == FLOATCONST
        assert tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_int_then_member_like_dot(self):
        # "1." parses as float; "1 ." would be int + punct -- ensure the
        # leading-dot float also works.
        assert tokenize(".5")[0].value == 0.5


class TestCharAndString:
    def test_simple_char(self):
        tok = tokenize("'a'")[0]
        assert tok.kind == CHARCONST
        assert tok.value == ord("a")

    @pytest.mark.parametrize(
        "literal,expected",
        [(r"'\n'", 10), (r"'\t'", 9), (r"'\0'", 0), (r"'\\'", 92), (r"'\''", 39),
         (r"'\x41'", 65)],
    )
    def test_escapes(self, literal, expected):
        assert tokenize(literal)[0].value == expected

    def test_string(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == STRING
        assert tok.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb"')[0].value == "a\nb"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_empty_char_raises(self):
        with pytest.raises(LexError):
            tokenize("''")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [ID, ID, EOF]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [ID, ID, EOF]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestPunctuators:
    def test_multichar_greedy(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("x++ + ++y") == ["x", "++", "+", "++", "y"]

    def test_relational(self):
        assert texts("a <= b >= c == d != e") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e",
        ]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_all_single_punctuators(self):
        for p in "+-*/%=<>!~&|^()[]{};,?:":
            toks = tokenize(p)
            assert toks[0].kind == PUNCT
            assert toks[0].text == p
