"""The code samples shipped in the documentation actually work."""

from tests.conftest import run_both


class TestSmallCReferenceExamples:
    def test_fib_example(self):
        source = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }

        int main() {
            int i;
            for (i = 0; i < 10; i++) {
                print_int(fib(i));
                putchar(' ');
            }
            putchar('\\n');
            return 0;
        }
        """
        pair = run_both(source)
        assert pair.output == b"0 1 1 2 3 5 8 13 21 34 \n"

    def test_readme_quickstart(self):
        source = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 100; i++) n += i;
            print_int(n); putchar(10);
            return 0;
        }
        """
        pair = run_both(source)
        assert pair.output == b"4950\n"
        assert pair.instruction_reduction() > 0

    def test_unsized_string_array_length_claim(self):
        # docs/SMALLC.md: char s[] = "hi" has length 3.
        source = """
        char s[] = "hi";
        int main() { print_int(s[2] == 0); putchar(10); return 0; }
        """
        assert run_both(source).output == b"1\n"

    def test_octal_and_hex_constants_claim(self):
        source = """
        int main() {
            print_int(017); putchar(' '); print_int(0xFF);
            putchar(10); return 0;
        }
        """
        assert run_both(source).output == b"15 255\n"

    def test_zeroed_data_segment_claim(self):
        source = """
        int uninitialised[4];
        int main() {
            print_int(uninitialised[3]); putchar(10); return 0;
        }
        """
        assert run_both(source).output == b"0\n"
