"""Parallel suite execution, the artifact cache, and telemetry folding.

The contract under test is serial-equivalence: ``--jobs N`` must produce
results, failure records, metrics, and manifests identical to a serial
run (``docs/PERFORMANCE.md`` states the guarantee).
"""

import os

import pytest

from repro.errors import ReproError, RuntimeLimitExceeded
from repro.harness.parallel import (
    ArtifactCache,
    artifact_key,
    default_jobs,
    map_tasks,
    resolve_cache_dir,
    run_pair_parallel,
)
from repro.harness.runner import run_suite
from repro.obs import METRICS, events
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

SUBSET = ("wc", "cal", "sort")

WC_SOURCE = """
int main() {
  int c; int n;
  n = 0;
  while ((c = getchar()) != -1) n = n + 1;
  print_int(n);
  putchar('\\n');
  return 0;
}
"""


def _counters(snapshot, exclude_prefix="harness."):
    return [
        row
        for row in snapshot["counters"]
        if not row["name"].startswith(exclude_prefix)
    ]


class TestSerialEquivalence:
    def test_pairs_match_serial_run(self):
        serial = run_suite(subset=SUBSET, use_cache=False)
        par = run_suite(subset=SUBSET, use_cache=False, jobs=4, cache_dir=False)
        assert [p.name for p in par] == [p.name for p in serial]
        for a, b in zip(serial, par):
            assert a.baseline == b.baseline
            assert a.branchreg == b.branchreg

    def test_metrics_match_serial_run(self):
        METRICS.reset()
        run_suite(subset=SUBSET, use_cache=False, jobs=1)
        serial = METRICS.snapshot()
        METRICS.reset()
        run_suite(subset=SUBSET, use_cache=False, jobs=4, cache_dir=False)
        parallel = METRICS.snapshot()
        # harness.* differs by design (jobs gauge, cache counters); all
        # compiler/emulator telemetry must fold back identically
        assert _counters(parallel) == _counters(serial)

    def test_failure_records_match_serial_run(self):
        kwargs = dict(
            subset=SUBSET,
            fault_tolerant=True,
            limit_overrides={"cal": 100},
            use_cache=False,
        )
        serial = run_suite(jobs=1, **kwargs)
        par = run_suite(jobs=4, cache_dir=False, **kwargs)
        assert [p.name for p in par] == [p.name for p in serial] == ["sort", "wc"]
        assert par.failures == serial.failures
        assert par.failures[0]["workload"] == "cal"
        assert par.failures[0]["error"] == "RuntimeLimitExceeded"
        assert par.failures[0]["edges"], "edge ring must cross the pool"

    def test_manifests_match_serial_run(self):
        from repro.obs.manifest import validate_manifest
        from repro.obs.report import run_report

        serial = run_report(subset=("wc", "cal"), jobs=1)["manifest"]
        par = run_report(subset=("wc", "cal"), jobs=4, cache_dir=False)["manifest"]
        validate_manifest(par)
        assert par["totals"] == serial["totals"]
        for a, b in zip(serial["programs"], par["programs"]):
            assert {k: v for k, v in a.items() if k != "duration_s"} == {
                k: v for k, v in b.items() if k != "duration_s"
            }
        assert "parallel" not in serial
        assert par["parallel"]["jobs"] == 4

    def test_error_type_and_state_cross_the_pool(self):
        with pytest.raises(RuntimeLimitExceeded) as info:
            run_suite(
                subset=SUBSET,
                limit_overrides={"cal": 100},
                use_cache=False,
                jobs=4,
                cache_dir=False,
            )
        exc = info.value
        assert exc.machine == "baseline"
        assert exc.program == "cal"
        assert exc.icount == 100
        assert exc.pc is not None

    def test_registry_earliest_error_wins(self):
        # two rigged failures: a serial run stops at the registry-earliest
        # one, so the parallel run must surface the same error
        with pytest.raises(ReproError) as info:
            run_suite(
                subset=SUBSET,
                limit_overrides={"cal": 100, "sort": 100},
                use_cache=False,
                jobs=4,
                cache_dir=False,
            )
        assert info.value.program == "cal"

    def test_run_pair_parallel_matches_run_pair(self):
        from repro.ease.environment import run_pair

        serial = run_pair(WC_SOURCE, stdin=b"hello", name="wc-test")
        par = run_pair_parallel(
            WC_SOURCE, stdin=b"hello", name="wc-test", jobs=2, cache_dir=False
        )
        assert par.baseline == serial.baseline
        assert par.branchreg == serial.branchreg


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        registry = MetricsRegistry()
        cache = ArtifactCache(tmp_path, registry=registry)
        first = cache.get_image(WC_SOURCE, "baseline")
        second = cache.get_image(WC_SOURCE, "baseline")
        assert first is second  # in-memory layer, reset() in place
        counters = {
            row["labels"]["result"]: row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters == {"miss": 1, "hit": 1}

    def test_disk_hit_rebuilds_equivalent_image(self, tmp_path):
        ArtifactCache(tmp_path).get_image(WC_SOURCE, "baseline")
        from repro.emu.baseline_emu import run_baseline

        # a fresh cache instance has an empty memory layer -> disk load
        registry = MetricsRegistry()
        image = ArtifactCache(tmp_path, registry=registry).get_image(
            WC_SOURCE, "baseline"
        )
        stats = run_baseline(image, stdin=b"hi", limit=100_000)
        assert stats.output == b"2\n"
        counters = {
            row["labels"]["result"]: row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters == {"hit": 1}

    def test_hits_return_pristine_images(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        from repro.emu.baseline_emu import run_baseline

        image = cache.get_image(WC_SOURCE, "baseline")
        run_baseline(image, stdin=b"dirty state", limit=100_000)
        again = cache.get_image(WC_SOURCE, "baseline")
        stats = run_baseline(again, stdin=b"hi", limit=100_000)
        assert stats.output == b"2\n"

    def test_key_separates_options_machine_and_source(self):
        base = artifact_key(WC_SOURCE, "baseline")
        assert artifact_key(WC_SOURCE, "branchreg") != base
        assert artifact_key(WC_SOURCE + " ", "baseline") != base
        assert artifact_key(WC_SOURCE, "baseline", {"hoisting": False}) != base
        # option order is canonicalised
        assert artifact_key(
            WC_SOURCE, "branchreg", {"hoisting": True, "fill_carriers": True}
        ) == artifact_key(
            WC_SOURCE, "branchreg", {"fill_carriers": True, "hoisting": True}
        )

    def test_corrupt_entry_is_detected_and_rebuilt(self, tmp_path):
        ArtifactCache(tmp_path).get_image(WC_SOURCE, "baseline")
        (entry,) = list(tmp_path.iterdir())
        entry.write_bytes(b"deadbeef\ngarbage that is not a pickle")
        registry = MetricsRegistry()
        image = ArtifactCache(tmp_path, registry=registry).get_image(
            WC_SOURCE, "baseline"
        )
        from repro.emu.baseline_emu import run_baseline

        assert run_baseline(image, stdin=b"hi", limit=100_000).output == b"2\n"
        counters = {
            row["labels"]["result"]: row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters == {"corrupt": 1, "miss": 1}
        # the poisoned entry was replaced by a valid one
        (rebuilt,) = list(tmp_path.iterdir())
        raw = rebuilt.read_bytes()
        digest, payload = raw.split(b"\n", 1)
        import hashlib

        assert digest == hashlib.sha256(payload).hexdigest().encode("ascii")

    def test_truncated_entry_is_a_counted_corruption(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.get_image(WC_SOURCE, "baseline")
        (entry,) = list(tmp_path.iterdir())
        entry.write_bytes(entry.read_bytes()[:-10])
        registry = MetricsRegistry()
        ArtifactCache(tmp_path, registry=registry).get_image(WC_SOURCE, "baseline")
        names = [
            row["labels"]["result"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        ]
        assert "corrupt" in names

    def test_suite_uses_cache_across_runs(self, tmp_path):
        METRICS.reset()
        run_suite(subset=("wc",), use_cache=False, jobs=2, cache_dir=tmp_path)
        run_suite(subset=("wc",), use_cache=False, jobs=2, cache_dir=tmp_path)
        counters = {
            row["labels"]["result"]: row["value"]
            for row in METRICS.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters["miss"] == 2  # baseline + branchreg, first run only
        assert counters["hit"] == 2  # second run served from disk/memory


class TestConfiguration:
    def test_default_jobs_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert default_jobs() == 1

    def test_resolve_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(False) is None
        assert resolve_cache_dir(tmp_path) == str(tmp_path)
        default = resolve_cache_dir(None)
        assert default.endswith(os.path.join(".cache", "repro", "artifacts"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(None) == str(tmp_path / "env")
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert resolve_cache_dir(None) is None

    def test_map_tasks_serial_fallback_preserves_order(self):
        assert map_tasks(str, [3, 1, 2], jobs=1) == ["3", "1", "2"]


class TestTelemetryFolding:
    def test_merge_snapshot_accumulates(self):
        a, b, merged = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        a.counter("c", k="x").inc(2)
        b.counter("c", k="x").inc(3)
        b.counter("c", k="y").inc(1)
        a.gauge("g").set(7)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        merged.merge_snapshot(a.snapshot())
        merged.merge_snapshot(b.snapshot())
        assert merged.counter("c", k="x").value == 5
        assert merged.counter("c", k="y").value == 1
        assert merged.gauge("g").value == 7
        hist = merged.histogram("h")
        assert (hist.count, hist.total, hist.min, hist.max) == (2, 4.0, 1.0, 3.0)

    def test_merge_rows_combines_spans(self):
        a, b = SpanRecorder(), SpanRecorder()
        a._record("workload", {"name": "wc"}, 1.0)
        b._record("workload", {"name": "wc"}, 3.0)
        b._record("emulate", {"machine": "baseline"}, 0.5)
        merged = SpanRecorder()
        merged.merge_rows(a.snapshot())
        merged.merge_rows(b.snapshot())
        rows = {row["name"]: row for row in merged.snapshot()}
        wc = rows["workload"]
        assert (wc["count"], wc["total_s"], wc["min_s"], wc["max_s"]) == (
            2, 4.0, 1.0, 3.0,
        )
        assert rows["emulate"]["count"] == 1

    def test_events_carry_both_clocks(self):
        sink = events.MemorySink()
        previous = events.set_sink(sink)
        try:
            events.emit("x")
        finally:
            events.set_sink(previous)
        event = sink.events[0]
        assert event["t"] > 0
        assert event["t_mono"] > 0

    def test_merge_events_orders_by_monotonic_clock(self):
        # wall clocks can step backwards; the monotonic stamp decides
        worker_a = [{"type": "a", "t": 999.0, "t_mono": 2.0}]
        worker_b = [
            {"type": "b", "t": 1.0, "t_mono": 1.0},
            {"type": "c", "t": 2.0, "t_mono": 3.0},
        ]
        merged = events.merge_events(worker_a, worker_b)
        assert [e["type"] for e in merged] == ["b", "a", "c"]

    def test_parallel_run_replays_worker_events_in_order(self):
        sink = events.MemorySink()
        previous = events.set_sink(sink)
        try:
            run_suite(
                subset=("wc", "cal"),
                use_cache=False,
                jobs=2,
                cache_dir=False,
                sample_every=1024,
            )
        finally:
            events.set_sink(previous)
        assert sink.events, "worker events never reached the parent sink"
        stamps = [e["t_mono"] for e in sink.events]
        assert stamps == sorted(stamps)
        types = {e["type"] for e in sink.events}
        assert "span" in types
        assert "emu.sample" in types or "emu.start" in types


_STRESS_SCRIPT = """
import json, os, sys, time
root, src_path, go = sys.argv[1], sys.argv[2], sys.argv[3]
source = open(src_path).read()
from repro.harness.parallel import ArtifactCache
from repro.obs.metrics import MetricsRegistry
registry = MetricsRegistry()
cache = ArtifactCache(root, registry=registry)
while not os.path.exists(go):  # start gate: maximise contention
    time.sleep(0.005)
image = cache.get_image(source, "baseline")
from repro.emu.baseline_emu import run_baseline
stats = run_baseline(image, stdin=b"hi", limit=100000)
counters = {
    row["labels"]["result"]: row["value"]
    for row in registry.snapshot()["counters"]
    if row["name"] == "harness.artifact_cache"
}
print(json.dumps({"output": stats.output.decode(), "counters": counters}))
"""


class TestConcurrentWriters:
    def test_two_processes_same_key_no_torn_reads(self, tmp_path):
        # Two real processes race to fill the same cache key.  Whatever
        # the interleaving: both must end with a working image, the
        # entry must never be observed torn, and exactly one valid
        # entry file may remain.
        import json
        import subprocess
        import sys

        cache_root = tmp_path / "cache"
        cache_root.mkdir()
        src_path = tmp_path / "wc.c"
        src_path.write_text(WC_SOURCE)
        go = tmp_path / "go"
        env = dict(os.environ)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _STRESS_SCRIPT, str(cache_root),
                 str(src_path), str(go)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            )
            for _ in range(3)
        ]
        go.write_text("")
        results = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            results.append(json.loads(out))
        # Everybody computed the right answer from an intact image.
        assert [r["output"] for r in results] == ["2\n"] * 3
        # No torn reads: a half-written entry would count "corrupt".
        for r in results:
            assert "corrupt" not in r["counters"]
            # Each process resolved the key exactly once.
            assert sum(r["counters"].values()) == 1
        # Hit accounting: at least one process compiled; the rest either
        # loaded the published entry (hit) or -- if the writer was slow
        # -- compiled redundantly, which is allowed but never wrong.
        misses = sum(r["counters"].get("miss", 0) for r in results)
        hits = sum(r["counters"].get("hit", 0) for r in results)
        assert misses >= 1
        assert misses + hits == 3
        # No duplicate entries, no leftover locks or staging files.
        (entry,) = list(cache_root.iterdir())
        assert entry.name.endswith(".mpc")
        raw = entry.read_bytes()
        digest, payload = raw.split(b"\n", 1)
        import hashlib

        assert digest == hashlib.sha256(payload).hexdigest().encode("ascii")


class TestCacheLocking:
    def test_lock_is_released_after_compile(self, tmp_path):
        ArtifactCache(tmp_path).get_image(WC_SOURCE, "baseline")
        assert not [p for p in tmp_path.iterdir() if p.name.endswith(".lock")]

    def test_stale_lock_is_reaped_on_acquire(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(WC_SOURCE, "baseline")
        lock = tmp_path / ("baseline-%s.mpc.lock" % key)
        lock.write_text("99999\n")
        old = __import__("time").time() - cache.LOCK_STALE_S - 5
        os.utime(lock, (old, old))
        registry = MetricsRegistry()
        image = ArtifactCache(tmp_path, registry=registry).get_image(
            WC_SOURCE, "baseline"
        )
        assert image is not None
        assert not lock.exists()

    def test_fresh_lock_blocks_acquire(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = str(tmp_path / "entry.mpc")
        assert cache._acquire_lock(path) is True
        assert cache._acquire_lock(path) is False  # held and fresh
        cache._release_lock(path)
        assert cache._acquire_lock(path) is True
        cache._release_lock(path)

    def test_waiter_loads_writers_entry(self, tmp_path):
        # A reader that loses the lock race waits for the writer's
        # os.replace and counts the load as a hit, not a recompile.
        import threading

        writer_cache = ArtifactCache(tmp_path)
        key = artifact_key(WC_SOURCE, "baseline")
        path = writer_cache._path("baseline", key)
        assert writer_cache._acquire_lock(path)

        def publish():
            __import__("time").sleep(0.2)
            writer_cache._compile_and_store(WC_SOURCE, "baseline", None, path)
            writer_cache._release_lock(path)

        thread = threading.Thread(target=publish)
        thread.start()
        try:
            registry = MetricsRegistry()
            image = ArtifactCache(tmp_path, registry=registry).get_image(
                WC_SOURCE, "baseline"
            )
        finally:
            thread.join()
        assert image is not None
        counters = {
            row["labels"]["result"]: row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters == {"hit": 1}

    def test_dead_writer_does_not_block_forever(self, tmp_path, monkeypatch):
        # The lock holder died without publishing: the waiter notices
        # the reaped/vanished lock and compiles itself.
        cache = ArtifactCache(tmp_path)
        key = artifact_key(WC_SOURCE, "baseline")
        path = cache._path("baseline", key)
        assert cache._acquire_lock(path)

        import threading

        def abandon():
            __import__("time").sleep(0.2)
            cache._release_lock(path)  # died; lock reaped, nothing stored

        thread = threading.Thread(target=abandon)
        thread.start()
        try:
            registry = MetricsRegistry()
            image = ArtifactCache(tmp_path, registry=registry).get_image(
                WC_SOURCE, "baseline"
            )
        finally:
            thread.join()
        assert image is not None
        counters = {
            row["labels"]["result"]: row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "harness.artifact_cache"
        }
        assert counters == {"miss": 1}

    def test_init_reaps_stale_staging_and_lock_files(self, tmp_path):
        stale_tmp = tmp_path / "baseline-abc.mpc.tmp.123"
        stale_lock = tmp_path / "baseline-abc.mpc.lock"
        fresh_lock = tmp_path / "baseline-def.mpc.lock"
        for p in (stale_tmp, stale_lock, fresh_lock):
            p.write_text("x")
        old = __import__("time").time() - ArtifactCache.TMP_STALE_S - 5
        os.utime(stale_tmp, (old, old))
        os.utime(stale_lock, (old, old))
        ArtifactCache(tmp_path)
        assert not stale_tmp.exists()
        assert not stale_lock.exists()
        assert fresh_lock.exists()  # fresh: a live writer owns it


class TestInterruptReaping:
    def test_map_tasks_keyboard_interrupt_reaps_workers(self):
        # A Ctrl-C mid-map must not leave orphaned pool workers behind.
        import time as _time

        def live_children():
            me = str(os.getpid())
            pids = []
            for entry in os.listdir("/proc"):
                if not entry.isdigit():
                    continue
                try:
                    status = open("/proc/%s/status" % entry).read()
                except OSError:
                    continue
                fields = dict(
                    line.split(":\t", 1)
                    for line in status.splitlines()
                    if ":\t" in line
                )
                if fields.get("PPid") == me and not fields.get(
                    "State", ""
                ).startswith("Z"):
                    pids.append(int(entry))
            return pids

        with pytest.raises(KeyboardInterrupt):
            map_tasks(_interruptible_task, list(range(8)), jobs=2)
        for _ in range(100):
            if not live_children():
                break
            _time.sleep(0.05)
        assert live_children() == []


def _interruptible_task(n):
    import time as _time

    if n == 0:
        # give the pool a moment to start the other workers
        _time.sleep(0.2)
        raise KeyboardInterrupt()
    _time.sleep(0.05)
    return n
