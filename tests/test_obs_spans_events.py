"""Tests for span timing, the event stream, and the shared logger."""

import json
import logging

import pytest

from repro.obs import events
from repro.obs.log import configure, log
from repro.obs.spans import SpanRecorder


@pytest.fixture
def recorder():
    return SpanRecorder()


@pytest.fixture
def sink():
    previous = events.set_sink(events.MemorySink())
    yield events.get_sink()
    events.set_sink(previous)


class TestSpans:
    def test_span_records(self, recorder):
        with recorder.span("frontend.parse"):
            pass
        rows = recorder.snapshot()
        assert len(rows) == 1
        assert rows[0]["name"] == "frontend.parse"
        assert rows[0]["phase"] == "frontend"
        assert rows[0]["count"] == 1
        assert rows[0]["total_s"] >= 0.0

    def test_span_aggregates_not_logs(self, recorder):
        for _ in range(100):
            with recorder.span("opt.dce"):
                pass
        assert len(recorder) == 1
        assert recorder.snapshot()[0]["count"] == 100

    def test_labels_split_spans(self, recorder):
        with recorder.span("emulate", machine="baseline"):
            pass
        with recorder.span("emulate", machine="branchreg"):
            pass
        assert len(recorder) == 2

    def test_name_label_allowed(self, recorder):
        with recorder.span("workload", name="wc"):
            pass
        assert recorder.snapshot()[0]["labels"] == {"name": "wc"}

    def test_records_on_exception(self, recorder):
        with pytest.raises(RuntimeError):
            with recorder.span("x"):
                raise RuntimeError("boom")
        assert recorder.snapshot()[0]["count"] == 1

    def test_timed_decorator(self, recorder):
        @recorder.timed("opt.helper")
        def helper(a, b):
            return a + b

        assert helper(2, 3) == 5
        rows = recorder.snapshot()
        assert rows[0]["name"] == "opt.helper"
        assert rows[0]["count"] == 1

    def test_phase_totals(self, recorder):
        with recorder.span("opt.a"):
            pass
        with recorder.span("opt.b"):
            pass
        with recorder.span("emulate"):
            pass
        totals = recorder.phase_totals()
        assert set(totals) == {"opt", "emulate"}

    def test_reset(self, recorder):
        with recorder.span("x"):
            pass
        recorder.reset()
        assert len(recorder) == 0


class TestEvents:
    def test_emit_noop_without_sink(self):
        previous = events.set_sink(None)
        try:
            assert not events.enabled()
            events.emit("anything", value=1)  # must not raise
        finally:
            events.set_sink(previous)

    def test_memory_sink_captures(self, sink):
        events.emit("emu.start", machine="baseline")
        assert events.enabled()
        assert sink.by_type("emu.start")[0]["machine"] == "baseline"
        assert "t" in sink.events[0]

    def test_memory_sink_bounded(self):
        sink = events.MemorySink(max_events=2)
        for i in range(5):
            sink.emit({"type": "x", "i": i})
        assert len(sink.events) == 2
        assert sink.dropped == 3

    def test_spans_emit_events_when_sink_attached(self, sink):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder()
        with rec.span("opt.dce"):
            pass
        spans = sink.by_type("span")
        assert spans and spans[0]["name"] == "opt.dce"

    def test_jsonl_sink_writes_valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with events.JsonlSink(str(path)) as sink:
            previous = events.set_sink(sink)
            try:
                events.emit("a", x=1)
                events.emit("b", y=[1, 2])
            finally:
                events.set_sink(previous)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "a"
        assert parsed[1]["y"] == [1, 2]


class TestEventStamps:
    def test_pid_and_seq_stamped(self, sink):
        import os

        events.emit("a")
        events.emit("b")
        first, second = sink.events
        assert first["pid"] == os.getpid() == second["pid"]
        assert second["seq"] > first["seq"]

    def test_explicit_fields_win_over_stamps(self, sink):
        events.emit("a", pid=42, seq=7)
        assert sink.events[0]["pid"] == 42
        assert sink.events[0]["seq"] == 7

    def test_trace_provider_stamps_context(self, sink):
        provider = events.set_trace_provider(lambda: ("tid01", "span01"))
        try:
            events.emit("a")
        finally:
            events.set_trace_provider(provider)
        assert sink.events[0]["trace_id"] == "tid01"
        assert sink.events[0]["parent_id"] == "span01"

    def test_no_context_no_trace_fields(self, sink):
        provider = events.set_trace_provider(None)
        try:
            events.emit("a")
        finally:
            events.set_trace_provider(provider)
        assert "trace_id" not in sink.events[0]
        assert "parent_id" not in sink.events[0]


class TestMergeEvents:
    def test_sorted_by_monotonic_time(self):
        streams = [
            [{"type": "a", "t_mono": 2.0}, {"type": "a", "t_mono": 5.0}],
            [{"type": "b", "t_mono": 1.0}, {"type": "b", "t_mono": 3.0}],
        ]
        merged = events.merge_events(*streams)
        assert [e["t_mono"] for e in merged] == [1.0, 2.0, 3.0, 5.0]

    def test_colliding_timestamps_tie_break_on_pid_then_seq(self):
        """Regression: equal t_mono values from different workers used to
        merge in arbitrary stream order; the (t_mono, pid, seq) key makes
        the interleave deterministic."""
        t = 1234.5
        streams = [
            [
                {"type": "x", "t_mono": t, "pid": 20, "seq": 0},
                {"type": "x", "t_mono": t, "pid": 20, "seq": 1},
            ],
            [
                {"type": "x", "t_mono": t, "pid": 10, "seq": 1},
                {"type": "x", "t_mono": t, "pid": 10, "seq": 0},
            ],
        ]
        merged = events.merge_events(*streams)
        assert [(e["pid"], e["seq"]) for e in merged] == [
            (10, 0), (10, 1), (20, 0), (20, 1),
        ]
        # Same input in the opposite stream order merges identically.
        remerged = events.merge_events(*reversed(streams))
        assert remerged == merged

    def test_unstamped_events_sort_first(self):
        merged = events.merge_events(
            [{"type": "new", "t_mono": 1.0, "pid": 1, "seq": 0}],
            [{"type": "legacy"}],
        )
        assert [e["type"] for e in merged] == ["legacy", "new"]


class TestLogging:
    def teardown_method(self):
        configure(0)

    def test_logger_name(self):
        assert log.name == "repro"

    def test_verbosity_levels(self):
        assert configure(-1).level == logging.ERROR
        assert configure(0).level == logging.WARNING
        assert configure(1).level == logging.INFO
        assert configure(2).level == logging.DEBUG

    def test_reconfigure_does_not_stack_handlers(self):
        configure(1)
        configure(2)
        assert len(log.handlers) == 1
