"""Static invariants of the branch-register code generator, the Section 5
allocator, and the carrier/noop passes."""

from repro.codegen.branchreg_gen import generate_branchreg
from repro.codegen.common import MInstr, mnoop
from repro.codegen.noopfill import fill_noop_carriers, replace_noops_with_bta
from repro.codegen.lowering import MachineFunction
from repro.lang.frontend import compile_to_ir
from repro.machine.spec import branchreg_spec
from repro.rtl.operand import Imm, Label, Reg


def br_program(source, **options):
    return generate_branchreg(compile_to_ir(source), **options)


LOOP_SRC = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++)
        n += i;
    print_int(n); putchar(10);
    return 0;
}
"""

CALL_IN_LOOP = """
int work(int x) { return x * 2; }
int main() {
    int i; int n = 0;
    for (i = 0; i < 8; i++)
        n += work(i);
    print_int(n); putchar(10);
    return 0;
}
"""


class TestStructure:
    def test_no_branch_instructions_exist(self):
        mprog = br_program(LOOP_SRC)
        for ins in mprog.all_instrs():
            assert ins.op not in ("bcc", "fbcc", "jmp", "call", "ijmp", "retrt")

    def test_cmpset_followed_by_link_carrier(self):
        mprog = br_program(LOOP_SRC)
        link = mprog.spec.br_link
        for fn in mprog.functions:
            instrs = [i for i in fn.instrs if not i.is_label()]
            for idx, ins in enumerate(instrs):
                if ins.op in ("cmpset", "fcmpset"):
                    nxt = instrs[idx + 1]
                    assert nxt.br == link, "cmpset not consumed by a carrier"

    def test_cmpset_never_carries(self):
        mprog = br_program(LOOP_SRC)
        for ins in mprog.all_instrs():
            if ins.op in ("cmpset", "fcmpset"):
                assert ins.br == 0

    def test_carrier_never_writes_referenced_register(self):
        mprog = br_program(CALL_IN_LOOP)
        for ins in mprog.all_instrs():
            if ins.br and ins.dst is not None and isinstance(ins.dst, Reg):
                if ins.dst.kind == "b":
                    assert ins.dst.index != ins.br

    def test_bta_displacement_within_function(self):
        from repro.emu.loader import Image

        mprog = br_program(CALL_IN_LOOP)
        image = Image(mprog)
        for ins in image.instrs:
            if ins.op == "bta":
                disp_words = (ins.t_addr - ins.addr) >> 2
                assert mprog.spec.disp_fits(disp_words)

    def test_loop_target_hoisted_to_preheader(self):
        """The loop-body bta must execute before the loop, not inside it."""
        from repro.emu.loader import Image
        from repro.emu.branchreg_emu import run_branchreg

        mprog = br_program(LOOP_SRC)
        stats = run_branchreg(Image(mprog))
        # 10 iterations but only a handful of bta calcs: hoisting worked.
        assert stats.bta_calcs < stats.transfers / 2

    def test_hoisting_disabled_increases_calcs(self):
        from repro.emu.loader import Image
        from repro.emu.branchreg_emu import run_branchreg

        with_h = run_branchreg(Image(br_program(LOOP_SRC)))
        without = run_branchreg(Image(br_program(LOOP_SRC, hoisting=False)))
        assert without.output == with_h.output
        assert without.bta_calcs > with_h.bta_calcs
        assert without.instructions > with_h.instructions

    def test_call_in_loop_uses_callee_saved_breg(self):
        mprog = br_program(CALL_IN_LOOP)
        spec = mprog.spec
        main = mprog.function("main")
        # The hoisted work() address pair must target a callee-saved breg.
        saved = [
            ins for ins in main.instrs
            if ins.op == "btalo" and ins.dst.index in spec.br_callee_saved
        ]
        assert saved, "call target in loop should use a non-scratch breg"

    def test_callee_saved_bregs_saved_and_restored(self):
        mprog = br_program(CALL_IN_LOOP)
        main = mprog.function("main")
        saves = [i for i in main.instrs if i.op == "bst" and "save b" in i.note]
        restores = [i for i in main.instrs if i.op == "bld" and "restore b" in i.note]
        assert len(saves) == len(restores) >= 1

    def test_leaf_saves_link_in_register(self):
        src = "int add1(int x) { if (x) return x + 1; return 0; } int main() { return add1(2); }"
        mprog = br_program(src)
        fn = mprog.function("add1")
        bmovs = [i for i in fn.instrs if i.op == "bmov"]
        assert bmovs and bmovs[0].srcs[0].index == mprog.spec.br_link

    def test_nonleaf_saves_link_to_stack(self):
        mprog = br_program(CALL_IN_LOOP)
        main = mprog.function("main")
        assert any(i.op == "bst" and i.note == "save link" for i in main.instrs)

    def test_straightline_leaf_returns_via_link_directly(self):
        src = "int three() { return 3; } int main() { return three(); }"
        mprog = br_program(src)
        fn = mprog.function("three")
        carriers = [i for i in fn.instrs if i.br]
        assert len(carriers) == 1
        assert carriers[0].br == mprog.spec.br_link
        assert not any(i.op in ("bmov", "bst") for i in fn.instrs)

    def test_indirect_jump_via_bld(self):
        src = """
        int f(int x) {
            switch (x) {
            case 0: return 1; case 1: return 2; case 2: return 3;
            case 3: return 4; default: return 0;
            }
        }
        int main() { return f(2); }
        """
        mprog = br_program(src)
        fn = mprog.function("f")
        blds = [i for i in fn.instrs if i.op == "bld" and not i.note]
        assert blds, "switch should load its target through bld"


class TestNoopFill:
    def _mfn(self, instrs):
        return MachineFunction("t", list(instrs))

    def test_attaches_to_adjacent_instruction(self):
        spec = branchreg_spec()
        r1 = Reg("r", 1)
        carrier = mnoop(br=4)
        carrier.tkind = "jump"
        mfn = self._mfn([
            MInstr("li", dst=r1, srcs=[Imm(5)]),
            carrier,
        ])
        assert fill_noop_carriers(mfn, spec) == 1
        assert mfn.instrs[0].op == "li" and mfn.instrs[0].br == 4

    def test_never_attaches_to_bta_of_same_register(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "jump"
        mfn = self._mfn([
            MInstr("bta", dst=Reg("b", 4), target=Label("L")),
            carrier,
        ])
        assert fill_noop_carriers(mfn, spec) == 0

    def test_attaches_to_bta_of_other_register(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "jump"
        mfn = self._mfn([
            MInstr("bta", dst=Reg("b", 2), target=Label("L")),
            carrier,
        ])
        assert fill_noop_carriers(mfn, spec) == 1

    def test_cmpset_source_cannot_move_past_cmpset(self):
        spec = branchreg_spec()
        link = spec.br_link
        r1 = Reg("r", 1)
        carrier = mnoop(br=link)
        carrier.tkind = "cond"
        mfn = self._mfn([
            MInstr("li", dst=r1, srcs=[Imm(5)]),
            MInstr("cmpset", dst=Reg("b", link), srcs=[r1, Imm(0)],
                   cond="eq", btrue=4),
            carrier,
        ])
        assert fill_noop_carriers(mfn, spec) == 0

    def test_independent_value_moves_past_cmpset(self):
        spec = branchreg_spec()
        link = spec.br_link
        carrier = mnoop(br=link)
        carrier.tkind = "cond"
        mfn = self._mfn([
            MInstr("li", dst=Reg("r", 2), srcs=[Imm(5)]),
            MInstr("cmpset", dst=Reg("b", link), srcs=[Reg("r", 1), Imm(0)],
                   cond="eq", btrue=4),
            carrier,
        ])
        assert fill_noop_carriers(mfn, spec) == 1
        assert mfn.instrs[-1].op == "li"

    def test_replacement_pulls_later_bta(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "jump"
        mfn = self._mfn([
            carrier,
            MInstr("bta", dst=Reg("b", 5), target=Label("L")),
        ])
        assert replace_noops_with_bta(mfn, spec) == 1
        assert mfn.instrs[0].op == "bta" and mfn.instrs[0].br == 4

    def test_replacement_respects_protected_registers(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "jump"
        mfn = self._mfn([
            carrier,
            MInstr("bta", dst=Reg("b", 5), target=Label("L")),
        ])
        assert replace_noops_with_bta(mfn, spec, protected_regs={5}) == 0

    def test_replacement_never_feeds_scratch_bta_to_call(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "call"
        mfn = self._mfn([
            carrier,
            MInstr("bta", dst=Reg("b", 5), target=Label("L")),
        ])
        assert replace_noops_with_bta(mfn, spec) == 0

    def test_replacement_allows_callee_saved_bta_into_call_carrier(self):
        spec = branchreg_spec()
        carrier = mnoop(br=4)
        carrier.tkind = "call"
        saved = spec.br_callee_saved[0]
        mfn = self._mfn([
            carrier,
            MInstr("bta", dst=Reg("b", saved), target=Label("L")),
        ])
        assert replace_noops_with_bta(mfn, spec) == 1
