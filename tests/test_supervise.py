"""The supervision layer: crash recovery, retry/backoff, quarantine,
hang kills, checkpoint/resume, and interrupt handling.

The overarching contract is the same serial-equivalence guarantee the
plain parallel harness gives (``docs/PERFORMANCE.md``), extended to a
hostile world: whatever is killed, delayed, or corrupted mid-run, a
converging supervised run must reassemble results byte-identical to an
unperturbed serial run (``docs/ROBUSTNESS.md``).
"""

import os

import pytest

from repro.errors import SuiteInterrupted
from repro.harness.runner import resolve_workloads, run_suite
from repro.harness.supervise import (
    SupervisePolicy,
    _read_start_markers,
    quarantine_record,
    run_suite_supervised,
)
from repro.emu.fastcore import resolve_engine
from repro.obs import METRICS

SUBSET = ("wc", "cal", "sort")
LIMIT = 200_000

#: A fast policy for tests: tiny backoff, deterministic seed.
FAST = SupervisePolicy(max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.05)


def _supervised(fault_plan=None, policy=FAST, subset=SUBSET, jobs=2,
                **kwargs):
    return run_suite_supervised(
        resolve_workloads(subset), LIMIT, jobs=jobs, cache_dir=False,
        engine=resolve_engine(None), policy=policy, fault_plan=fault_plan,
        **kwargs
    )


def _counter(name, **labels):
    total = 0
    for row in METRICS.snapshot()["counters"]:
        if row["name"] != name:
            continue
        if any(row["labels"].get(k) != v for k, v in labels.items()):
            continue
        total += row["value"]
    return total


@pytest.fixture
def reference():
    return run_suite(subset=SUBSET, limit=LIMIT, jobs=1, use_cache=False,
                     cache_dir=False)


class TestPolicy:
    def test_coerce(self):
        assert SupervisePolicy.coerce(None) is None
        assert SupervisePolicy.coerce(False) is None
        assert SupervisePolicy.coerce(True) == SupervisePolicy()
        policy = SupervisePolicy(max_attempts=5)
        assert SupervisePolicy.coerce(policy) is policy
        with pytest.raises(TypeError):
            SupervisePolicy.coerce("yes")

    def test_with_attempts(self):
        assert SupervisePolicy().with_attempts(None).max_attempts == 3
        assert SupervisePolicy().with_attempts(7).max_attempts == 7
        assert SupervisePolicy().with_attempts(0).max_attempts == 1

    def test_quarantine_record_shape_matches_failure_record(self):
        from repro.fault.triage import failure_record
        from repro.errors import CodegenError

        reference = failure_record("wc", CodegenError("boom"))
        record = quarantine_record("wc", "WorkerCrash", "died", 3)
        assert set(reference) <= set(record)
        assert record["outcome"] == "quarantined"
        assert record["attempts"] == 3


class TestCleanRuns:
    def test_supervised_matches_serial(self, reference):
        result = _supervised()
        assert list(result) == list(reference)
        assert result.failures == []
        assert result.quarantined == []

    def test_run_suite_supervise_flag(self, reference):
        result = run_suite(
            subset=SUBSET, limit=LIMIT, jobs=2, use_cache=False,
            cache_dir=False, supervise=True,
        )
        assert list(result) == list(reference)

    def test_supervised_run_bypasses_memo_cache(self):
        METRICS.reset()
        run_suite(subset=("wc",), limit=LIMIT, jobs=2, use_cache=True,
                  cache_dir=False, supervise=True)
        assert _counter("harness.suite_cache", result="bypass") == 1
        assert _counter("harness.suite_cache", result="hit") == 0


class TestCrashRecovery:
    def test_worker_kill_is_recovered(self, reference):
        METRICS.reset()
        result = _supervised(fault_plan={"cal": [("kill",)]})
        assert list(result) == list(reference)
        assert result.failures == []
        assert _counter("harness.worker_crashes") >= 1
        assert _counter("harness.retries") >= 1

    def test_transient_exception_is_retried(self, reference):
        METRICS.reset()
        result = _supervised(fault_plan={"wc": [("raise", "flaky")]})
        assert list(result) == list(reference)
        assert _counter("harness.retries", reason="HarnessChaosError") == 1

    def test_typed_errors_are_never_retried(self):
        # A deterministic ReproError must surface exactly as the serial
        # run surfaces it -- no retry can change a deterministic result.
        from repro.errors import RuntimeLimitExceeded

        METRICS.reset()
        with pytest.raises(RuntimeLimitExceeded):
            run_suite_supervised(
                resolve_workloads(SUBSET), LIMIT, jobs=2, cache_dir=False,
                engine=resolve_engine(None), policy=FAST,
                limit_overrides={"cal": 100},
            )
        assert _counter("harness.retries") == 0

    def test_fault_tolerant_typed_errors_become_failures(self):
        result = run_suite_supervised(
            resolve_workloads(SUBSET), LIMIT, jobs=2, cache_dir=False,
            engine=resolve_engine(None), policy=FAST, fault_tolerant=True,
            limit_overrides={"cal": 100},
        )
        assert [p.name for p in result] == ["sort", "wc"]
        assert result.failures[0]["workload"] == "cal"
        assert result.failures[0]["error"] == "RuntimeLimitExceeded"
        assert result.quarantined == []

    def test_poison_task_is_quarantined_with_isolation_proof(self):
        # Killed on every attempt *including* the final isolation retry:
        # that is a genuinely poison workload.
        METRICS.reset()
        policy = SupervisePolicy(max_attempts=2, backoff_base_s=0.01,
                                 backoff_cap_s=0.05)
        result = _supervised(
            subset=("wc", "cal"), policy=policy,
            fault_plan={"cal": [("kill",)] * 5},
        )
        assert [p.name for p in result] == ["wc"]
        (record,) = result.quarantined
        assert record["workload"] == "cal"
        assert record["error"] == "WorkerCrash"
        assert record["outcome"] == "quarantined"
        assert "isolation" in record["message"]
        assert result.failures == [record]
        assert _counter("harness.quarantined") == 1
        # wc may also burn its budget to collateral pool deaths and pass
        # through isolation, so the count is at-least rather than exact.
        assert _counter("harness.retries", reason="IsolationRetry") >= 1

    def test_collateral_victim_is_rescued_by_isolation_retry(self,
                                                             reference):
        # cal is killed twice (its whole budget at max_attempts=2); wc
        # may also be charged collateral attempts when the shared pool
        # breaks.  Nobody innocent may be quarantined.
        policy = SupervisePolicy(max_attempts=2, backoff_base_s=0.01,
                                 backoff_cap_s=0.05)
        result = _supervised(policy=policy,
                             fault_plan={"cal": [("kill",), ("kill",)]})
        assert list(result) == list(reference)
        assert result.quarantined == []

    def test_hang_is_killed_and_recovered(self, reference):
        METRICS.reset()
        policy = SupervisePolicy(max_attempts=3, backoff_base_s=0.01,
                                 backoff_cap_s=0.05, task_timeout_s=1.0)
        result = _supervised(policy=policy,
                             fault_plan={"wc": [("hang", 30.0)]})
        assert list(result) == list(reference)
        assert _counter("harness.hang_kills") == 1
        assert _counter("harness.worker_crashes") >= 1


class TestBackoff:
    def test_backoff_is_seeded_and_bounded(self):
        from repro.harness.supervise import _Supervisor

        policy = SupervisePolicy(backoff_base_s=0.05, backoff_cap_s=0.2,
                                 seed=42)
        a = _Supervisor([], 1, policy, None, None, None)
        b = _Supervisor([], 1, policy, None, None, None)
        delays_a = [a._backoff(n) for n in range(1, 6)]
        delays_b = [b._backoff(n) for n in range(1, 6)]
        assert delays_a == delays_b  # same seed, same jitter
        assert all(d <= 0.2 * 1.5 for d in delays_a)  # cap * max jitter
        assert all(d >= 0.05 * 0.5 for d in delays_a[:1])
        different = _Supervisor(
            [], 1, SupervisePolicy(backoff_base_s=0.05, backoff_cap_s=0.2,
                                   seed=7), None, None, None)
        assert [different._backoff(n) for n in range(1, 6)] != delays_a


class TestLimitOverrides:
    def test_jobs1_vs_jobs2_equivalence(self):
        # Satellite: per-workload limit overrides must thread through
        # every execution path -- serial, plain parallel, supervised.
        kwargs = dict(
            subset=SUBSET, limit=LIMIT, fault_tolerant=True,
            limit_overrides={"cal": 100}, use_cache=False, cache_dir=False,
        )
        serial = run_suite(jobs=1, **kwargs)
        parallel = run_suite(jobs=2, **kwargs)
        supervised = run_suite(jobs=2, supervise=True, **kwargs)
        assert list(serial) == list(parallel) == list(supervised)
        assert serial.failures == parallel.failures == supervised.failures
        assert supervised.failures[0]["workload"] == "cal"
        assert supervised.failures[0]["error"] == "RuntimeLimitExceeded"


class TestStartMarkers:
    def test_torn_marker_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "markers.log")
        with open(path, "w") as handle:
            handle.write("wc\t1\t123\t10.5\n")
            handle.write("cal\t2\t456\t11.5\n")
            handle.write("sort\t1\t78")  # torn: killed mid-write
        markers = _read_start_markers(path)
        assert markers == {("wc", 1): (123, 10.5), ("cal", 2): (456, 11.5)}

    def test_missing_marker_file_is_empty(self, tmp_path):
        assert _read_start_markers(str(tmp_path / "absent")) == {}


class TestInterrupt:
    def test_interrupt_raises_suite_interrupted_with_partial(self, tmp_path):
        from repro.harness.checkpoint import CheckpointJournal

        path = str(tmp_path / "ck.jsonl")
        journal = CheckpointJournal.open(path, "test-key")
        try:
            with pytest.raises(SuiteInterrupted) as info:
                run_suite_supervised(
                    resolve_workloads(SUBSET), LIMIT, jobs=2,
                    cache_dir=False, engine=resolve_engine(None),
                    policy=FAST, journal=journal, interrupt_after=1,
                )
        finally:
            journal.close()
        exc = info.value
        assert len(exc.partial) == 1
        assert len(exc.remaining) == 2
        assert len(exc.partial) + len(exc.remaining) == len(SUBSET)
        # The completed prefix is durable.
        reloaded = CheckpointJournal.open(path, "test-key", resume=True)
        try:
            assert len(reloaded.entries) == 1
        finally:
            reloaded.close()

    def test_interrupt_leaves_no_orphan_workers(self):
        import time

        def live_children():
            pids = []
            me = str(os.getpid())
            for entry in os.listdir("/proc"):
                if not entry.isdigit():
                    continue
                try:
                    status = open("/proc/%s/status" % entry).read()
                except OSError:
                    continue
                fields = dict(
                    line.split(":\t", 1)
                    for line in status.splitlines()
                    if ":\t" in line
                )
                if fields.get("PPid") == me and not fields.get(
                    "State", ""
                ).startswith("Z"):
                    pids.append(int(entry))
            return pids

        with pytest.raises(SuiteInterrupted):
            _supervised(interrupt_after=1)
        # Shutdown reaps synchronously, but give the kernel a moment to
        # transition any killed worker out of the process table.
        for _ in range(100):
            if not live_children():
                break
            time.sleep(0.05)
        assert live_children() == []

    def test_resume_after_interrupt_is_byte_identical(self, tmp_path,
                                                      reference):
        path = str(tmp_path / "ck.jsonl")
        kwargs = dict(
            subset=SUBSET, limit=LIMIT, jobs=2, use_cache=False,
            cache_dir=False, supervise=True, checkpoint=path,
        )
        with pytest.raises(SuiteInterrupted):
            run_suite(interrupt_after=1, **kwargs)
        METRICS.reset()
        resumed = run_suite(resume=True, **kwargs)
        assert list(resumed) == list(reference)
        assert _counter("harness.checkpoint", result="hit") == 1


class TestManifest:
    def test_supervised_report_records_supervision_section(self):
        from repro.obs.manifest import validate_manifest
        from repro.obs.report import run_report

        result = run_report(subset=("wc", "cal"), limit=LIMIT, jobs=2,
                            supervise=True)
        manifest = result["manifest"]
        validate_manifest(manifest)
        assert manifest["schema"] == "repro.run-manifest/7"
        supervision = manifest["supervision"]
        assert supervision["enabled"] is True
        assert supervision["max_attempts"] == 3
        assert supervision["interrupted"] is False
        assert manifest["failures"] == []

    def test_interrupted_report_is_a_valid_partial_manifest(self, tmp_path):
        from repro.obs.manifest import validate_manifest
        from repro.obs.report import run_report

        path = str(tmp_path / "ck.jsonl")
        result = run_report(subset=SUBSET, limit=LIMIT, jobs=2,
                            supervise=True, checkpoint=path,
                            interrupt_after=1)
        assert result["interrupted"] is True
        manifest = result["manifest"]
        validate_manifest(manifest)
        supervision = manifest["supervision"]
        assert supervision["interrupted"] is True
        assert len(supervision["remaining"]) == 2
        assert len(manifest["programs"]) == 1
        # ...and --resume completes it with only the unfinished pairs.
        resumed = run_report(subset=SUBSET, limit=LIMIT, jobs=2,
                             supervise=True, checkpoint=path, resume=True)
        assert resumed["interrupted"] is False
        assert len(resumed["manifest"]["programs"]) == 3
        assert resumed["manifest"]["supervision"]["checkpoint"]["hits"] == 1
