"""Tests for the Section 5 branch-register allocation algorithm."""

from repro.cfg.build import build_cfg
from repro.cfg.freq import estimate_frequencies
from repro.cfg.loops import ensure_preheader, find_loops, preheader_is_safe
from repro.codegen.braregalloc import Site, plan_branch_registers
from repro.lang.frontend import compile_to_ir
from repro.machine.spec import branchreg_spec
from repro.opt.pipeline import optimize_function


def planned(source, name="main", spec=None, hoisting=True):
    spec = spec or branchreg_spec()
    fn = compile_to_ir(source).functions[name]
    optimize_function(fn)
    cfg = build_cfg(fn)
    loops = find_loops(cfg)
    estimate_frequencies(cfg, loops)
    for loop in loops:
        if preheader_is_safe(loop):
            ensure_preheader(cfg, loop, fn)
    sites = _collect(cfg)
    plan = plan_branch_registers(cfg, loops, sites, spec, fn, hoisting=hoisting)
    return plan, cfg, loops, spec


def _collect(cfg):
    sites = []
    for block in cfg.blocks:
        for idx, ins in enumerate(block.instrs):
            if ins.op == "call":
                sites.append(Site("call", block, idx, target=ins.callee,
                                  freq=block.freq))
        term = block.terminator()
        if term is None or term.op == "call":
            continue
        idx = len(block.instrs) - 1
        if term.op in ("br", "fbr"):
            sites.append(Site("cond", block, idx, target=term.target.name,
                              freq=block.freq))
        elif term.op == "jmp":
            sites.append(Site("jump", block, idx, target=term.target.name,
                              freq=block.freq))
        elif term.op == "ret":
            sites.append(Site("return", block, idx, freq=block.freq))
    return sites


LOOP = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++) n += i;
    return n;
}
"""

LOOP_WITH_CALL = """
int f(int x) { return x + 1; }
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++) n = f(n);
    return n;
}
"""


class TestLinkConvention:
    def test_straightline_needs_no_save(self):
        plan, *_ = planned("int main() { return 3; }")
        assert plan.link_save == "none"

    def test_leaf_with_branches_saves_in_register(self):
        plan, _cfg, _loops, spec = planned(LOOP)
        assert plan.link_save == "breg"
        assert plan.link_scratch in spec.br_scratch

    def test_nonleaf_saves_on_stack(self):
        plan, *_ = planned(LOOP_WITH_CALL)
        assert plan.link_save == "stack"


class TestHoisting:
    def test_loop_target_hoisted(self):
        plan, _cfg, loops, _spec = planned(LOOP)
        assert plan.hoisted
        assert all(calc.preheader not in calc.loop.blocks for calc in plan.hoisted)

    def test_hoisting_flag_respected(self):
        plan, *_ = planned(LOOP, hoisting=False)
        assert plan.hoisted == []

    def test_call_free_loop_uses_scratch(self):
        plan, _cfg, _loops, spec = planned(LOOP)
        for calc in plan.hoisted:
            assert calc.breg in spec.br_scratch

    def test_loop_with_call_uses_callee_saved(self):
        plan, _cfg, _loops, spec = planned(LOOP_WITH_CALL)
        in_loop = [c for c in plan.hoisted]
        assert in_loop
        for calc in in_loop:
            assert calc.breg in spec.br_callee_saved
        assert plan.used_callee_bregs

    def test_hoisted_sites_annotated(self):
        plan, *_ = planned(LOOP)
        hoisted_sites = [s for s in plan.sites if s.hoisted is not None]
        assert hoisted_sites
        for site in hoisted_sites:
            assert site.breg == site.hoisted.breg

    def test_local_reserve_leaves_registers(self):
        """Hoisting must leave at least LOCAL_RESERVE registers free in
        every loop region (regression for the register-starvation bug)."""
        src = """
        int main() {
            int i; int j; int k; int n = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 3; j++)
                    for (k = 0; k < 3; k++)
                        if (n % 2) n += i; else n += j;
            return n;
        }
        """
        plan, cfg, loops, spec = planned(src)
        usable = set(spec.br_scratch) | set(spec.br_callee_saved)
        usable.discard(plan.link_scratch)
        for loop in loops:
            busy = set()
            for calc in plan.hoisted:
                if calc.loop.blocks & loop.blocks:
                    busy.add(calc.breg)
            assert len(usable - busy) >= 2

    def test_same_register_reused_across_disjoint_loops(self):
        src = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 5; i++) n += i;
            for (i = 0; i < 5; i++) n -= i;
            return n;
        }
        """
        plan, *_ = planned(src)
        regs = [calc.breg for calc in plan.hoisted]
        # Two sequential loops can share registers; at minimum the plan
        # must not use more registers than targets.
        assert len(set(regs)) <= len(regs)
        assert plan.hoisted


class TestLocalAssignment:
    def test_every_non_return_site_has_register(self):
        plan, _cfg, _loops, spec = planned(LOOP_WITH_CALL)
        for site in plan.sites:
            if site.kind == "return":
                continue
            assert site.breg is not None
            assert site.breg != spec.br_pc
            assert site.breg != spec.br_link

    def test_link_scratch_never_assigned_to_sites(self):
        plan, *_ = planned(LOOP_WITH_CALL)
        for site in plan.sites:
            if site.kind != "return":
                assert site.breg != plan.link_scratch

    def test_call_and_terminator_get_distinct_registers_in_same_block(self):
        src = """
        int f(int x) { return x; }
        int main() {
            int i; int n = 0;
            for (i = 0; i < 4; i++)
                n += f(i);
            return n;
        }
        """
        plan, cfg, _loops, _spec = planned(src)
        by_block = {}
        for site in plan.sites:
            if site.kind in ("call", "cond", "jump"):
                by_block.setdefault(id(site.block), []).append(site)
        for sites in by_block.values():
            calls = [s for s in sites if s.kind == "call" and s.hoisted is None]
            terms = [s for s in sites if s.kind != "call" and s.hoisted is None]
            if calls and terms:
                assert calls[0].breg != terms[0].breg
