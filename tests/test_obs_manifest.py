"""Tests for run-manifest building, serialisation, and validation."""

import json

import pytest

from repro.ease.environment import run_pair
from repro.emu.stats import RunStats
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SCHEMA_ID,
    SCHEMA_V1,
    ManifestError,
    build_manifest,
    collect_provenance,
    git_commit,
    load_manifest,
    stats_to_dict,
    validate_manifest,
    write_manifest,
)

SIMPLE = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 5; i++) n += i;
    print_int(n); putchar(10);
    return 0;
}
"""


@pytest.fixture(scope="module")
def pair():
    return run_pair(SIMPLE, name="simple")


@pytest.fixture(scope="module")
def manifest(pair):
    return build_manifest(
        [pair],
        config={"subset": ("simple",), "limit": 1000000},
        duration_s=0.5,
        workload_durations={"simple": 0.25},
    )


class TestStatsToDict:
    def test_core_fields(self, pair):
        d = stats_to_dict(pair.baseline)
        assert d["machine"] == "baseline"
        assert d["instructions"] == pair.baseline.instructions
        assert d["transfers"] == pair.baseline.transfers
        assert d["output_len"] == len(pair.baseline.output)
        assert "output" not in d

    def test_counters_serialised_as_dicts(self, pair):
        d = stats_to_dict(pair.branchreg)
        assert isinstance(d["opcounts"], dict)
        assert sum(d["opcounts"].values()) == pair.branchreg.instructions
        # Tuple keys become "p,c" strings.
        for key in d["cond_joint"]:
            assert len(key.split(",")) == 2

    def test_json_serialisable(self, pair):
        json.dumps(stats_to_dict(pair.branchreg))

    def test_icache_attached_when_present(self):
        stats = RunStats(machine="baseline")

        class FakeICacheStats:
            def __init__(self):
                self.hits = 3
                self.misses = 1

        stats.icache = FakeICacheStats()
        stats.cache_stalls = 8
        d = stats_to_dict(stats)
        assert d["icache"] == {"hits": 3, "misses": 1}
        assert d["cache_stalls"] == 8


class TestBuildManifest:
    def test_schema_id(self, manifest):
        assert manifest["schema"] == SCHEMA_ID

    def test_validates_on_build(self, manifest):
        validate_manifest(manifest)  # must not raise

    def test_totals_match_program(self, manifest):
        prog = manifest["programs"][0]
        assert (
            manifest["totals"]["baseline"]["instructions"]
            == prog["baseline"]["instructions"]
        )

    def test_duration_recorded(self, manifest):
        assert manifest["programs"][0]["duration_s"] == 0.25

    def test_json_roundtrip(self, manifest):
        doc = json.loads(json.dumps(manifest))
        validate_manifest(doc)

    def test_write_and_load(self, manifest, tmp_path):
        path = write_manifest(manifest, str(tmp_path / "run.json"))
        loaded = load_manifest(path)
        assert loaded["totals"] == manifest["totals"]

    def test_default_filename_is_bench_timestamp(self, manifest, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_manifest(dict(manifest))
        assert path.startswith("BENCH_") and path.endswith(".json")


class TestValidator:
    def test_missing_required_key_rejected(self, manifest):
        broken = dict(manifest)
        del broken["totals"]
        with pytest.raises(ManifestError, match="totals"):
            validate_manifest(broken)

    def test_wrong_type_rejected(self, manifest):
        broken = json.loads(json.dumps(manifest))
        broken["programs"][0]["baseline"]["instructions"] = "lots"
        with pytest.raises(ManifestError, match="instructions"):
            validate_manifest(broken)

    def test_wrong_schema_id_rejected(self, manifest):
        broken = dict(manifest)
        broken["schema"] = "something/else"
        with pytest.raises(ManifestError, match="schema"):
            validate_manifest(broken)

    def test_bool_is_not_integer(self):
        with pytest.raises(ManifestError):
            validate_manifest(True, schema={"type": "integer"})

    def test_null_alternative_accepted(self):
        validate_manifest(None, schema={"type": ["array", "null"]})

    def test_error_paths_are_useful(self, manifest):
        broken = json.loads(json.dumps(manifest))
        broken["phases"] = [{"name": "x"}]
        with pytest.raises(ManifestError, match=r"phases\[0\]"):
            validate_manifest(broken)

    def test_schema_itself_lists_phases_and_metrics(self):
        assert "phases" in MANIFEST_SCHEMA["required"]
        assert "metrics" in MANIFEST_SCHEMA["required"]


class TestProvenance:
    def test_manifest_embeds_provenance(self, manifest):
        provenance = manifest["provenance"]
        assert provenance["argv"]  # this test process's command line
        assert provenance["git_sha"] is None or isinstance(
            provenance["git_sha"], str
        )

    def test_explicit_argv_recorded(self, pair):
        doc = build_manifest(
            [pair],
            config={"subset": ("simple",), "limit": None},
            duration_s=0.1,
            provenance=collect_provenance(["repro", "report", "--subset", "wc"]),
        )
        assert doc["provenance"]["argv"] == [
            "repro", "report", "--subset", "wc"
        ]

    def test_git_sha_shape(self):
        sha = git_commit()
        # Outside a work tree this is None; inside it is a full hex sha.
        if sha is not None:
            assert len(sha) == 40
            int(sha, 16)

    def test_v1_manifest_still_validates(self, manifest):
        # Older BENCH_*.json artifacts carry the v1 schema id and no
        # provenance section; they must keep loading.
        legacy = json.loads(json.dumps(manifest))
        legacy["schema"] = SCHEMA_V1
        del legacy["provenance"]
        validate_manifest(legacy)

    def test_unknown_schema_version_rejected(self, manifest):
        broken = dict(manifest)
        broken["schema"] = "repro.run-manifest/99"
        with pytest.raises(ManifestError, match="schema"):
            validate_manifest(broken)

    def test_malformed_provenance_rejected(self, manifest):
        broken = json.loads(json.dumps(manifest))
        broken["provenance"] = {"git_sha": 42, "argv": []}
        with pytest.raises(ManifestError, match="git_sha"):
            validate_manifest(broken)
