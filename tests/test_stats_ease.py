"""Tests for RunStats accounting, suite totals, and the EASE environment."""

import pytest

from repro.ease.environment import run_on_machine, run_pair
from repro.ease.report import cycles_table, per_program_table, table1_text
from repro.emu.stats import RunStats, suite_totals
from repro.errors import EmulationError, RuntimeLimitExceeded
from repro.pipeline.model import estimate_all


SIMPLE = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 5; i++) n += i;
    print_int(n); putchar(10);
    return 0;
}
"""


class TestRunStats:
    def test_merge_accumulates(self):
        a = RunStats(instructions=10, data_refs=2, noops=1)
        b = RunStats(instructions=5, data_refs=3, noops=0)
        a.merge(b)
        assert a.instructions == 15
        assert a.data_refs == 5

    def test_merge_covers_every_field(self):
        # Regression: merge is derived from dataclasses.fields(), so every
        # non-identity field must participate.  Set each int field to a
        # distinct value, merge twice, and check the sums -- a counter
        # added to the dataclass but forgotten by merge fails here.
        import dataclasses
        from collections import Counter

        a, b = RunStats(), RunStats()
        expected = {}
        for i, f in enumerate(dataclasses.fields(RunStats), start=1):
            if f.name in RunStats.IDENTITY_FIELDS:
                continue
            if f.type is Counter or f.default_factory is Counter:
                getattr(a, f.name)[i] = 2
                getattr(b, f.name)[i] = 3
                expected[f.name] = Counter({i: 5})
            else:
                setattr(a, f.name, i)
                setattr(b, f.name, 10 * i)
                expected[f.name] = 11 * i
        a.merge(b)
        for name, want in expected.items():
            assert getattr(a, name) == want, name

    def test_merge_preserves_identity_fields(self):
        a = RunStats(machine="baseline", program="wc", exit_code=0, output=b"x")
        b = RunStats(machine="branchreg", program="sort", exit_code=1, output=b"y")
        a.merge(b)
        assert a.machine == "baseline"
        assert a.program == "wc"
        assert a.exit_code == 0
        assert a.output == b"x"

    def test_merge_rejects_unmergeable_field(self):
        import dataclasses

        @dataclasses.dataclass
        class BadStats(RunStats):
            weird: float = 0.5

        with pytest.raises(TypeError, match="weird"):
            BadStats().merge(BadStats())

    def test_suite_totals(self):
        total = suite_totals(
            [RunStats(instructions=10), RunStats(instructions=20)], "m"
        )
        assert total.instructions == 30
        assert total.program == "TOTAL"

    def test_transfer_fraction(self):
        s = RunStats(instructions=100, uncond_transfers=5, cond_transfers=5)
        assert s.transfer_fraction() == 0.10

    def test_transfer_fraction_empty(self):
        assert RunStats().transfer_fraction() == 0.0


class TestAccounting:
    def test_data_refs_equal_loads_plus_stores(self):
        for machine in ("baseline", "branchreg"):
            stats = run_on_machine(SIMPLE, machine)
            assert stats.data_refs == stats.loads + stats.stores

    def test_transfers_split_into_cond_and_uncond(self):
        stats = run_on_machine(SIMPLE, "baseline")
        assert stats.transfers == stats.uncond_transfers + stats.cond_transfers
        assert stats.cond_transfers >= 5  # loop test each iteration

    def test_cond_taken_bounded(self):
        stats = run_on_machine(SIMPLE, "baseline")
        assert 0 < stats.cond_taken <= stats.cond_transfers

    def test_calls_and_returns_balance(self):
        stats = run_on_machine(SIMPLE, "branchreg")
        assert stats.calls >= 1  # print_int
        assert stats.returns >= 1

    def test_opcount_sum_matches_instructions(self):
        stats = run_on_machine(SIMPLE, "branchreg")
        assert sum(stats.opcounts.values()) == stats.instructions

    def test_carriers_partition_transfers(self):
        stats = run_on_machine(SIMPLE, "branchreg")
        assert stats.noop_carriers + stats.useful_carriers == stats.transfers

    def test_prefetch_gap_totals_transfers(self):
        stats = run_on_machine(SIMPLE, "branchreg")
        assert sum(stats.prefetch_gap.values()) == stats.transfers

    def test_cond_joint_totals_cond_transfers(self):
        stats = run_on_machine(SIMPLE, "branchreg")
        assert sum(stats.cond_joint.values()) == stats.cond_transfers

    def test_baseline_has_no_bta(self):
        stats = run_on_machine(SIMPLE, "baseline")
        assert stats.bta_calcs == 0

    def test_instruction_limit_enforced(self):
        with pytest.raises(RuntimeLimitExceeded):
            run_on_machine(
                "int main() { while (1) ; return 0; }", "baseline", limit=1000
            )


class TestRunPair:
    def test_pair_outputs_cross_checked(self):
        pair = run_pair(SIMPLE, name="simple")
        assert pair.output == b"10\n"
        assert pair.name == "simple"

    def test_reduction_metrics(self):
        pair = run_pair(SIMPLE, name="simple")
        assert -1.0 < pair.instruction_reduction() < 1.0
        assert -1.0 < pair.data_ref_increase() < 1.0

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            run_on_machine(SIMPLE, "vax")


class TestReports:
    def _pair(self):
        return run_pair(SIMPLE, name="simple")

    def test_table1_text(self):
        pair = self._pair()
        text = table1_text(pair.baseline, pair.branchreg)
        assert "Table I" in text
        assert "baseline" in text and "branch register" in text
        assert "%" in text

    def test_per_program_table(self):
        text = per_program_table([self._pair()])
        assert "simple" in text

    def test_cycles_table(self):
        pair = self._pair()
        est = [estimate_all(pair.baseline, pair.branchreg, stages=n) for n in (3, 4)]
        text = cycles_table(est)
        assert "stages" in text
        assert text.count("\n") == 2
