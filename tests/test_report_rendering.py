"""Tests for report rendering helpers not covered elsewhere."""

from repro.ease.report import cache_table
from repro.pipeline.diagrams import _render, _stage_letters


class TestCacheTable:
    def test_rows_render(self):
        rows = [
            {
                "config": "64w/4w/2",
                "machine": "baseline",
                "stalls": 1234,
                "miss_rate": 0.0567,
                "covered": 10,
                "pollution": 2,
            }
        ]
        text = cache_table(rows)
        assert "64w/4w/2" in text
        assert "5.67%" in text
        assert "1,234" in text

    def test_missing_optional_fields_default(self):
        rows = [
            {
                "config": "c",
                "machine": "m",
                "stalls": 0,
                "miss_rate": 0.0,
            }
        ]
        text = cache_table(rows)
        assert text.count("\n") == 1


class TestDiagramInternals:
    def test_stage_letters_three(self):
        assert _stage_letters(3) == ("F", "D", "E")

    def test_stage_letters_five(self):
        letters = _stage_letters(5)
        assert letters[0] == "F" and letters[-1] == "E"
        assert len(letters) == 5

    def test_render_places_rows(self):
        text = _render(
            [("A", 0, ("F", "D", "E")), ("B", 1, ("F", "D", "E"))], "title"
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert lines[2].startswith("A")
        assert lines[3].startswith("B")
        # B starts one cycle later than A.
        assert lines[3].index("|F|") > lines[2].index("|F|")
