"""End-to-end SmallC execution semantics, cross-checked on both machines.

Every test compiles a program for the baseline machine *and* the
branch-register machine, runs both emulators, and asserts they produce
the same, expected output -- the strongest functional check of the whole
stack (front end, optimizer, both code generators, both emulators).
"""


def expr_program(expression, setup=""):
    return (
        "int main() { %s print_int(%s); putchar(10); return 0; }"
        % (setup, expression)
    )


class TestIntegerArithmetic:
    def test_basic_ops(self, both):
        assert both(expr_program("2 + 3 * 4 - 1")) == "13\n"

    def test_division_truncates_toward_zero(self, both):
        assert both(expr_program("(-7) / 2")) == "-3\n"
        assert both(expr_program("7 / -2")) == "-3\n"

    def test_remainder_sign(self, both):
        assert both(expr_program("(-7) % 3")) == "-1\n"
        assert both(expr_program("7 % -3")) == "1\n"

    def test_wrapping_overflow(self, both):
        src = expr_program("a + a", setup="int a = 2000000000;")
        assert both(src) == "-294967296\n"

    def test_bitwise(self, both):
        assert both(expr_program("(12 & 10) | (1 ^ 3)")) == "10\n"

    def test_shifts(self, both):
        assert both(expr_program("1 << 10")) == "1024\n"
        assert both(expr_program("-16 >> 2")) == "-4\n"

    def test_unary(self, both):
        assert both(expr_program("-(5)")) == "-5\n"
        assert both(expr_program("~0")) == "-1\n"
        assert both(expr_program("!0")) == "1\n"
        assert both(expr_program("!7")) == "0\n"

    def test_large_constants(self, both):
        # Exercises sethi/addlo on both machines (and the narrower
        # branch-register immediates).
        assert both(expr_program("123456789")) == "123456789\n"
        assert both(expr_program("-99999")) == "-99999\n"

    def test_comparison_values(self, both):
        assert both(expr_program("(3 < 5) + (5 <= 5) + (6 > 7) + (2 != 2)")) == "2\n"


class TestControlFlow:
    def test_if_else_chain(self, both):
        src = """
        int classify(int n) {
            if (n < 0) return -1;
            else if (n == 0) return 0;
            else return 1;
        }
        int main() {
            print_int(classify(-5)); print_int(classify(0)); print_int(classify(9));
            putchar(10);
            return 0;
        }
        """
        assert both(src) == "-101\n"

    def test_while_loop(self, both):
        src = """
        int main() {
            int n = 0; int i = 0;
            while (i < 10) { n += i; i++; }
            print_int(n); putchar(10);
            return 0;
        }
        """
        assert both(src) == "45\n"

    def test_empty_while_body_never_entered(self, both):
        src = """
        int main() { while (0) putchar('x'); print_int(7); putchar(10); return 0; }
        """
        assert both(src) == "7\n"

    def test_do_while_executes_once(self, both):
        src = """
        int main() { int n = 0; do { n++; } while (0); print_int(n); putchar(10); return 0; }
        """
        assert both(src) == "1\n"

    def test_for_with_break_continue(self, both):
        src = """
        int main() {
            int total = 0; int i;
            for (i = 0; i < 100; i++) {
                if (i % 2) continue;
                if (i > 10) break;
                total += i;
            }
            print_int(total); putchar(10);
            return 0;
        }
        """
        assert both(src) == "30\n"

    def test_nested_loops(self, both):
        src = """
        int main() {
            int n = 0; int i; int j;
            for (i = 0; i < 5; i++)
                for (j = 0; j < i; j++)
                    n++;
            print_int(n); putchar(10);
            return 0;
        }
        """
        assert both(src) == "10\n"

    def test_short_circuit_and(self, both):
        src = """
        int count = 0;
        int bump() { count++; return 1; }
        int main() {
            if (0 && bump()) putchar('x');
            if (1 && bump()) putchar('y');
            print_int(count); putchar(10);
            return 0;
        }
        """
        assert both(src) == "y1\n"

    def test_short_circuit_or(self, both):
        src = """
        int count = 0;
        int bump() { count++; return 0; }
        int main() {
            if (1 || bump()) putchar('a');
            if (0 || bump()) putchar('b');
            print_int(count); putchar(10);
            return 0;
        }
        """
        assert both(src) == "a1\n"

    def test_ternary(self, both):
        assert both(expr_program("1 ? 10 : 20")) == "10\n"
        assert both(expr_program("0 ? 10 : 20")) == "20\n"

    def test_goto_like_deep_breaks(self, both):
        src = """
        int main() {
            int i; int found = 0;
            for (i = 0; i < 50 && !found; i++)
                if (i * i == 49) found = i;
            print_int(found); putchar(10);
            return 0;
        }
        """
        assert both(src) == "7\n"


class TestSwitch:
    def test_chain_switch(self, both):
        src = """
        int f(int x) {
            switch (x) { case 1: return 10; case 5: return 50; default: return -1; }
        }
        int main() {
            print_int(f(1)); putchar(' ');
            print_int(f(5)); putchar(' ');
            print_int(f(3)); putchar(10);
            return 0;
        }
        """
        assert both(src) == "10 50 -1\n"

    def test_dense_switch_uses_jump_table(self, both):
        # 5 dense cases trigger the jump-table lowering (indirect jumps).
        src = """
        int f(int x) {
            switch (x) {
            case 0: return 100;
            case 1: return 101;
            case 2: return 102;
            case 3: return 103;
            case 4: return 104;
            default: return -1;
            }
        }
        int main() {
            int i;
            for (i = -1; i <= 5; i++) { print_int(f(i)); putchar(' '); }
            putchar(10);
            return 0;
        }
        """
        assert both(src) == "-1 100 101 102 103 104 -1 \n"

    def test_switch_fallthrough(self, both):
        src = """
        int main() {
            int n = 0;
            switch (2) {
            case 1: n += 1;
            case 2: n += 2;
            case 3: n += 4;
                break;
            case 4: n += 8;
            }
            print_int(n); putchar(10);
            return 0;
        }
        """
        assert both(src) == "6\n"

    def test_switch_no_default_falls_out(self, both):
        src = """
        int main() {
            switch (42) { case 1: putchar('x'); }
            print_int(5); putchar(10);
            return 0;
        }
        """
        assert both(src) == "5\n"


class TestPointersAndArrays:
    def test_pointer_walk(self, both):
        src = """
        int main() {
            char *s = "hello";
            int n = 0;
            while (*s) { n++; s++; }
            print_int(n); putchar(10);
            return 0;
        }
        """
        assert both(src) == "5\n"

    def test_pointer_arithmetic_scaling(self, both):
        src = """
        int a[5];
        int main() {
            int *p = a;
            int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            p = p + 3;
            print_int(*p); putchar(10);
            print_int(p - a); putchar(10);
            return 0;
        }
        """
        assert both(src) == "9\n3\n"

    def test_address_of_local(self, both):
        src = """
        void set(int *p) { *p = 77; }
        int main() { int x = 0; set(&x); print_int(x); putchar(10); return 0; }
        """
        assert both(src) == "77\n"

    def test_2d_global_array(self, both):
        src = """
        int m[3][4];
        int main() {
            int i; int j; int total = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            for (i = 0; i < 3; i++)
                total += m[i][3];
            print_int(total); putchar(10);
            return 0;
        }
        """
        assert both(src) == "39\n"

    def test_local_array(self, both):
        src = """
        int main() {
            int buf[8]; int i; int sum = 0;
            for (i = 0; i < 8; i++) buf[i] = i + 1;
            for (i = 0; i < 8; i++) sum += buf[i];
            print_int(sum); putchar(10);
            return 0;
        }
        """
        assert both(src) == "36\n"

    def test_char_array_zero_extends(self, both):
        src = """
        char data[2];
        int main() {
            data[0] = 200;   /* stored as byte 200, loads back unsigned */
            print_int(data[0]); putchar(10);
            return 0;
        }
        """
        assert both(src) == "200\n"

    def test_global_initializers(self, both):
        src = """
        int nums[4] = {3, 1, 4, 1};
        char text[] = "ab";
        char *msg = "xyz";
        int scalar = -9;
        int main() {
            print_int(nums[0] + nums[1] + nums[2] + nums[3]); putchar(10);
            print_str(text); putchar(10);
            print_str(msg); putchar(10);
            print_int(scalar); putchar(10);
            return 0;
        }
        """
        assert both(src) == "9\nab\nxyz\n-9\n"

    def test_string_interning_shares_storage(self, both):
        src = """
        int main() {
            char *a = "same";
            char *b = "same";
            print_int(a == b); putchar(10);
            return 0;
        }
        """
        assert both(src) == "1\n"


class TestIncDecAndCompound:
    def test_postfix_value(self, both):
        src = """
        int main() {
            int i = 5;
            print_int(i++); print_int(i); putchar(10);
            return 0;
        }
        """
        assert both(src) == "56\n"

    def test_prefix_value(self, both):
        src = """
        int main() {
            int i = 5;
            print_int(++i); print_int(i); putchar(10);
            return 0;
        }
        """
        assert both(src) == "66\n"

    def test_pointer_incdec_scales(self, both):
        src = """
        int a[3] = {10, 20, 30};
        int main() {
            int *p = a;
            p++;
            print_int(*p); putchar(10);
            p--;
            print_int(*p); putchar(10);
            return 0;
        }
        """
        assert both(src) == "20\n10\n"

    def test_postfix_on_memory_location(self, both):
        src = """
        int a[2] = {7, 0};
        int main() {
            a[1] = a[0]++;
            print_int(a[0]); print_int(a[1]); putchar(10);
            return 0;
        }
        """
        assert both(src) == "87\n"

    def test_compound_assignment_all_ops(self, both):
        src = """
        int main() {
            int x = 100;
            x += 5; x -= 1; x *= 2; x /= 4; x %= 11;
            x <<= 3; x |= 1; x &= 29; x ^= 6;
            print_int(x); putchar(10);
            return 0;
        }
        """
        x = 100
        x += 5; x -= 1; x *= 2; x //= 4; x %= 11
        x <<= 3; x |= 1; x &= 29; x ^= 6
        assert both(src) == "%d\n" % x

    def test_compound_on_array_element(self, both):
        src = """
        int a[1] = {3};
        int main() { a[0] += 4; print_int(a[0]); putchar(10); return 0; }
        """
        assert both(src) == "7\n"


class TestFunctions:
    def test_recursion_factorial(self, both):
        src = """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { print_int(fact(10)); putchar(10); return 0; }
        """
        assert both(src) == "3628800\n"

    def test_deep_recursion(self, both):
        src = """
        int depth(int n) { if (n == 0) return 0; return 1 + depth(n - 1); }
        int main() { print_int(depth(500)); putchar(10); return 0; }
        """
        assert both(src) == "500\n"

    def test_four_arguments(self, both):
        src = """
        int combine(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }
        int main() { print_int(combine(1, 2, 3, 4)); putchar(10); return 0; }
        """
        assert both(src) == "1234\n"

    def test_void_function(self, both):
        src = """
        int g = 0;
        void bump() { g++; }
        int main() { bump(); bump(); print_int(g); putchar(10); return 0; }
        """
        assert both(src) == "2\n"

    def test_call_in_expression(self, both):
        src = """
        int three() { return 3; }
        int main() { print_int(three() * three() + three()); putchar(10); return 0; }
        """
        assert both(src) == "12\n"

    def test_mutual_recursion(self, both):
        src = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { print_int(is_even(10)); print_int(is_odd(10)); putchar(10); return 0; }
        """
        assert both(src) == "10\n"

    def test_exit_builtin_stops_program(self, both_pair):
        src = """
        int main() { putchar('a'); exit(3); putchar('b'); return 0; }
        """
        pair = both_pair(src)
        assert pair.output == b"a"
        assert pair.baseline.exit_code == 3
        assert pair.branchreg.exit_code == 3


class TestFloats:
    def test_float_arithmetic(self, both):
        src = """
        int main() {
            float a = 1.5; float b = 2.25;
            print_float(a + b); putchar(10);
            print_float(a * b); putchar(10);
            print_float(b - a); putchar(10);
            print_float(b / a); putchar(10);
            return 0;
        }
        """
        assert both(src) == "3.750\n3.375\n0.750\n1.500\n"

    def test_float_int_conversions(self, both):
        src = """
        int main() {
            float f = 7.9;
            print_int((int) f); putchar(10);       /* truncates */
            print_float((float) 3); putchar(10);
            return 0;
        }
        """
        assert both(src) == "7\n3.000\n"

    def test_negative_float(self, both):
        src = """
        int main() { float f = -2.5; print_float(f); putchar(10); return 0; }
        """
        assert both(src) == "-2.500\n"

    def test_float_compare_branches(self, both):
        src = """
        int main() {
            float x = 0.1;
            if (x > 0.0) putchar('p');
            if (x < 1.0) putchar('q');
            if (x == 0.1) putchar('r');
            putchar(10);
            return 0;
        }
        """
        # 0.1 is not exactly representable in f32 but both the literal and
        # the stored value round identically, so the equality holds.
        assert both(src) == "pqr\n"

    def test_float_in_loop(self, both):
        src = """
        int main() {
            float total = 0.0; int i;
            for (i = 0; i < 10; i++) total = total + 0.5;
            print_float(total); putchar(10);
            return 0;
        }
        """
        assert both(src) == "5.000\n"

    def test_stdlib_sqrt(self, both):
        src = """
        int main() { print_float(f_sqrt(16.0)); putchar(10); return 0; }
        """
        assert both(src) == "4.000\n"


class TestIO:
    def test_echo(self, both):
        src = """
        int main() { int c; while ((c = getchar()) != -1) putchar(c); return 0; }
        """
        assert both(src, stdin=b"round trip\n") == "round trip\n"

    def test_getchar_eof(self, both):
        src = """
        int main() { print_int(getchar()); putchar(10); return 0; }
        """
        assert both(src, stdin=b"") == "-1\n"

    def test_stdlib_strings(self, both):
        src = """
        int main() {
            char buf[16];
            strcpy(buf, "copy");
            print_int(strlen(buf)); putchar(10);
            print_int(strcmp(buf, "copy")); putchar(10);
            print_int(strcmp(buf, "copz") < 0); putchar(10);
            print_int(atoi("  -273")); putchar(10);
            return 0;
        }
        """
        assert both(src) == "4\n0\n1\n-273\n"
