"""Tests for the Section 8 prefetching instruction cache."""

import pytest

from repro.cache.icache import PrefetchICache


def make_cache(**kwargs):
    defaults = dict(words=64, line_words=4, assoc=2, miss_penalty=8, queue_size=8)
    defaults.update(kwargs)
    return PrefetchICache(**defaults)


class TestDemandPath:
    def test_cold_miss_pays_full_penalty(self):
        cache = make_cache()
        assert cache.demand(0x1000, now=0) == 8
        assert cache.stats.misses == 1

    def test_hit_after_fill(self):
        cache = make_cache()
        cache.demand(0x1000, now=0)
        assert cache.demand(0x1000, now=20) == 0
        assert cache.stats.hits == 1

    def test_same_line_shares_fill(self):
        cache = make_cache(line_words=4)
        cache.demand(0x1000, now=0)
        # 0x1004 is in the same 16-byte line; after fill completes: hit.
        assert cache.demand(0x1004, now=20) == 0

    def test_different_lines_miss_separately(self):
        cache = make_cache(line_words=4)
        cache.demand(0x1000, now=0)
        assert cache.demand(0x1010, now=20) == 8

    def test_lru_eviction(self):
        cache = make_cache(words=16, line_words=4, assoc=2)  # 2 sets
        # Two lines mapping to the same set, then a third evicts the LRU.
        a, b, c = 0x1000, 0x1000 + 2 * 16, 0x1000 + 4 * 16
        cache.demand(a, 0)
        cache.demand(b, 100)
        cache.demand(a, 200)  # refresh a
        cache.demand(c, 300)  # evicts b
        assert cache.demand(a, 400) == 0
        assert cache.demand(b, 500) == 8  # b was evicted

    def test_miss_rate(self):
        cache = make_cache()
        cache.demand(0x1000, 0)
        cache.demand(0x1000, 20)
        cache.demand(0x1000, 30)
        assert cache.stats.miss_rate == pytest.approx(1 / 3)


class TestPrefetch:
    def test_prefetch_covers_later_demand(self):
        cache = make_cache()
        cache.prefetch(0x2000, now=0)
        assert cache.demand(0x2000, now=10) == 0
        assert cache.stats.fully_covered == 1

    def test_late_prefetch_partially_covers(self):
        cache = make_cache(miss_penalty=8)
        cache.prefetch(0x2000, now=0)
        stall = cache.demand(0x2000, now=3)
        assert stall == 5  # remaining fill time
        assert cache.stats.partial_covered == 1

    def test_prefetch_of_resident_line_is_noop(self):
        cache = make_cache()
        cache.demand(0x2000, 0)
        cache.prefetch(0x2000, 20)
        assert cache.stats.prefetches == 0

    def test_queue_limit_drops(self):
        cache = make_cache(words=256, assoc=2, queue_size=2)
        cache.prefetch(0x1000, 0)
        cache.prefetch(0x2000, 0)
        cache.prefetch(0x3000, 0)  # queue full
        assert cache.stats.prefetch_drops == 1

    def test_queue_drains_over_time(self):
        cache = make_cache(words=256, queue_size=2, miss_penalty=8)
        cache.prefetch(0x1000, 0)
        cache.prefetch(0x2000, 0)
        # After the fills complete the queue is free again.
        cache.prefetch(0x3000, now=50)
        assert cache.stats.prefetch_drops == 0

    def test_unused_prefetch_counted_on_eviction(self):
        cache = make_cache(words=16, line_words=4, assoc=1)  # 4 sets, direct
        target = 0x1000
        conflicting = 0x1000 + 4 * 16  # same set
        cache.prefetch(target, 0)
        cache.demand(conflicting, 50)  # evicts the untouched prefetch
        assert cache.stats.unused_prefetches == 1

    def test_prefetch_disabled(self):
        cache = make_cache(prefetch_enabled=False)
        cache.prefetch(0x2000, 0)
        assert cache.stats.prefetches == 0
        assert cache.demand(0x2000, 10) == 8


class TestConfiguration:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PrefetchICache(words=30, line_words=4, assoc=2)

    def test_set_count(self):
        cache = make_cache(words=64, line_words=4, assoc=2)
        assert cache.n_sets == 8


class TestEndToEnd:
    def test_prefetch_reduces_branchreg_stalls(self):
        from repro.ease.environment import compile_for_machine
        from repro.emu.branchreg_emu import run_branchreg
        from repro.workloads import workload

        w = workload("sieve")
        image = compile_for_machine(w.source, "branchreg")
        with_pf = PrefetchICache(words=64, prefetch_enabled=True)
        without = PrefetchICache(words=64, prefetch_enabled=False)
        s1 = run_branchreg(image.reset(), stdin=b"", icache=with_pf)
        s2 = run_branchreg(image.reset(), stdin=b"", icache=without)
        assert s1.output == s2.output
        assert s1.cache_stalls <= s2.cache_stalls
