"""Tests for the dynamic execution profiler (repro.obs.profile).

The central property: the profiler's reconstructed per-PC counts must sum
to the emulator's exact dynamic instruction count -- on every workload, on
both machines.  Everything else (blocks, branch rows, source attribution)
is derived from those counts, so consistency checks on the derived views
ride on the same fixtures.
"""

import json

import pytest

from repro.obs.manifest import ManifestError
from repro.obs.profile import (
    PROFILE_SCHEMA_ID,
    load_profile,
    render_listing,
    run_profile,
    validate_profile,
    write_profile,
)

# Three workloads with different control-flow shapes: wc is branch-heavy,
# matmult is loop-nest-heavy, spline is float/call-heavy.
WORKLOADS = ("wc", "matmult", "spline")
MACHINES = ("baseline", "branchreg")


@pytest.fixture(scope="module")
def runs():
    return {
        (name, machine): run_profile(name, machine)
        for name in WORKLOADS
        for machine in MACHINES
    }


class TestExactness:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("machine", MACHINES)
    def test_pc_counts_sum_to_instruction_count(self, runs, name, machine):
        profile = runs[(name, machine)].profile
        assert profile["pc_total"] == profile["instructions"]

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("machine", MACHINES)
    def test_block_instructions_sum_to_instruction_count(
        self, runs, name, machine
    ):
        profile = runs[(name, machine)].profile
        assert (
            sum(b["instructions"] for b in profile["blocks"])
            == profile["instructions"]
        )

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("machine", MACHINES)
    def test_function_counts_sum_to_instruction_count(
        self, runs, name, machine
    ):
        profile = runs[(name, machine)].profile
        assert (
            sum(f["count"] for f in profile["functions"])
            == profile["instructions"]
        )

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("machine", MACHINES)
    def test_stats_match_unprofiled_run(self, runs, name, machine):
        from repro.ease.environment import compile_for_machine
        from repro.emu.baseline_emu import run_baseline
        from repro.emu.branchreg_emu import run_branchreg

        run = runs[(name, machine)]
        runner = run_baseline if machine == "baseline" else run_branchreg
        image = compile_for_machine(run.workload.source, machine)
        plain = runner(image, stdin=run.workload.stdin_bytes(), program=name)
        assert run.stats.instructions == plain.instructions
        assert run.stats.data_refs == plain.data_refs
        assert run.stats.output == plain.output


class TestBlocks:
    def test_blocks_are_disjoint_and_uniform(self, runs):
        run = runs[("matmult", "branchreg")]
        pcs = run.profiler.pc_counts()
        seen = set()
        for start, end, count in run.profiler.basic_blocks():
            addrs = range(start, end + 4, 4)
            for addr in addrs:
                assert addr not in seen
                seen.add(addr)
                assert pcs[addr] == count
        assert seen == set(pcs)

    def test_hottest_function_of_matmult_is_multiply(self, runs):
        for machine in MACHINES:
            profile = runs[("matmult", machine)].profile
            assert profile["functions"][0]["function"] == "multiply"


class TestBranches:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_conditional_rows_balance(self, runs, machine):
        profile = runs[("wc", machine)].profile
        cond_kinds = ("bcc", "fbcc") if machine == "baseline" else ("cond",)
        conds = [b for b in profile["branches"] if b["kind"] in cond_kinds]
        assert conds
        for b in conds:
            assert b["taken"] + b["not_taken"] == b["executed"]
            assert 0 <= b["taken"] <= b["executed"]

    def test_edge_counts_match_taken_totals(self, runs):
        run = runs[("wc", "branchreg")]
        profile = run.profile
        taken_by_src = {}
        for edge in profile["edges"]:
            taken_by_src[edge["from"]] = (
                taken_by_src.get(edge["from"], 0) + edge["count"]
            )
        rows = {b["addr"]: b for b in profile["branches"]}
        for src, n in taken_by_src.items():
            assert rows[src]["taken"] == n


class TestMachineSpecificSections:
    def test_baseline_has_delay_slots(self, runs):
        profile = runs[("wc", "baseline")].profile
        assert "delay_slots" in profile and "carriers" not in profile
        slots = profile["delay_slots"]
        assert slots["filled"] >= 0 and slots["unfilled"] >= 0
        assert slots["filled"] + slots["unfilled"] > 0

    def test_branchreg_carriers_match_transfer_stats(self, runs):
        run = runs[("wc", "branchreg")]
        carriers = run.profile["carriers"]
        assert (
            carriers["noop"] + carriers["useful"] == run.stats.transfers
        )
        assert "prefetch_gap" in run.profile


class TestSerialisation:
    def test_schema_id(self, runs):
        assert runs[("wc", "baseline")].profile["schema"] == PROFILE_SCHEMA_ID

    def test_roundtrip(self, runs, tmp_path):
        profile = runs[("spline", "branchreg")].profile
        path = write_profile(profile, str(tmp_path / "spline.json"))
        loaded = load_profile(path)
        assert loaded == json.loads(json.dumps(profile))

    def test_invalid_document_rejected(self, runs):
        broken = dict(runs[("wc", "baseline")].profile)
        del broken["blocks"]
        with pytest.raises(ManifestError, match="blocks"):
            validate_profile(broken)

    def test_wrong_machine_rejected(self, runs):
        broken = json.loads(json.dumps(runs[("wc", "baseline")].profile))
        broken["machine"] = "z80"
        with pytest.raises(ManifestError, match="machine"):
            validate_profile(broken)


class TestListing:
    def test_listing_mentions_hot_source_text(self, runs):
        run = runs[("matmult", "baseline")]
        text = render_listing(run, top=5)
        assert "hot source lines" in text
        assert "multiply" in text
        assert "delay slots" in text
        # The paper's inner-product line is matmult's hottest statement.
        assert "mat_a" in text

    def test_branchreg_listing_reports_carriers(self, runs):
        text = render_listing(runs[("wc", "branchreg")], top=5)
        assert "carriers" in text
        assert "prefetch distance" in text

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_profile("nope", "baseline")
