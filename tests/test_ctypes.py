"""Tests for the SmallC type system."""

import pytest

from repro.lang import ctypes as ct


class TestBaseTypes:
    def test_sizes(self):
        assert ct.INT.size == 4
        assert ct.CHAR.size == 1
        assert ct.FLOAT.size == 4
        assert ct.VOID.size == 0

    def test_predicates(self):
        assert ct.INT.is_int() and ct.INT.is_integral() and ct.INT.is_arithmetic()
        assert ct.CHAR.is_char() and ct.CHAR.is_integral()
        assert ct.FLOAT.is_float() and not ct.FLOAT.is_integral()
        assert ct.VOID.is_void() and not ct.VOID.is_scalar()

    def test_str(self):
        assert str(ct.INT) == "int"
        assert str(ct.PointerType(ct.CHAR)) == "char*"
        assert str(ct.ArrayType(ct.INT, 4)) == "int[4]"


class TestComposite:
    def test_pointer_size(self):
        assert ct.PointerType(ct.CHAR).size == 4
        assert ct.PointerType(ct.PointerType(ct.INT)).size == 4

    def test_array_size(self):
        assert ct.ArrayType(ct.INT, 10).size == 40
        assert ct.ArrayType(ct.ArrayType(ct.CHAR, 8), 4).size == 32

    def test_decay(self):
        arr = ct.ArrayType(ct.INT, 3)
        assert ct.decay(arr) == ct.PointerType(ct.INT)
        assert ct.decay(ct.INT) is ct.INT

    def test_element_size(self):
        assert ct.element_size(ct.PointerType(ct.INT)) == 4
        assert ct.element_size(ct.PointerType(ct.CHAR)) == 1
        assert ct.element_size(ct.ArrayType(ct.FLOAT, 2)) == 4
        with pytest.raises(TypeError):
            ct.element_size(ct.INT)


class TestAssignability:
    def test_arithmetic_mix(self):
        assert ct.assignable(ct.INT, ct.FLOAT)
        assert ct.assignable(ct.FLOAT, ct.CHAR)
        assert ct.assignable(ct.CHAR, ct.INT)

    def test_pointer_rules(self):
        p_char = ct.PointerType(ct.CHAR)
        p_int = ct.PointerType(ct.INT)
        assert ct.assignable(p_char, p_int)  # K&R-style looseness
        assert ct.assignable(p_char, ct.INT)  # NULL idiom
        assert ct.assignable(ct.INT, p_char)

    def test_array_decays_in_assignment_source(self):
        assert ct.assignable(ct.PointerType(ct.INT), ct.ArrayType(ct.INT, 3))


class TestCommonArith:
    def test_float_wins(self):
        assert ct.common_arith(ct.INT, ct.FLOAT).is_float()
        assert ct.common_arith(ct.FLOAT, ct.CHAR).is_float()

    def test_ints_widen_to_int(self):
        assert ct.common_arith(ct.CHAR, ct.CHAR).is_int()
