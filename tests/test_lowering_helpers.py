"""Tests for shared lowering helpers: parallel moves, the legalizer,
frame layout, and compare scheduling."""

import pytest

from repro.codegen.common import MInstr, mnoop
from repro.codegen.lowering import (
    FrameLayout,
    Legalizer,
    MachineFunction,
    emit_moves,
    resolve_parallel_moves,
)
from repro.codegen.noopfill import schedule_compares
from repro.machine.spec import baseline_spec, branchreg_spec
from repro.rtl.function import IRFunction, Local
from repro.rtl.operand import Imm, Reg


def r(i):
    return Reg("r", i)


class TestParallelMoves:
    def _apply(self, order, initial):
        state = dict(initial)
        for dst, src in order:
            state[dst] = state.get(src, src)
        return state

    def test_independent_moves(self):
        order = resolve_parallel_moves([(r(1), r(5)), (r(2), r(6))], lambda k: r(7))
        assert len(order) == 2

    def test_chain_ordered_correctly(self):
        # r1 <- r2, r2 <- r3: r1 must be written first.
        moves = [(r(1), r(2)), (r(2), r(3))]
        order = resolve_parallel_moves(moves, lambda k: r(7))
        state = self._apply(order, {r(1): "a", r(2): "b", r(3): "c"})
        assert state[r(1)] == "b" and state[r(2)] == "c"

    def test_two_cycle_uses_temp(self):
        moves = [(r(1), r(2)), (r(2), r(1))]
        order = resolve_parallel_moves(moves, lambda k: r(7))
        state = self._apply(order, {r(1): "a", r(2): "b"})
        assert state[r(1)] == "b" and state[r(2)] == "a"
        assert any(dst == r(7) for dst, _src in order)

    def test_three_cycle(self):
        moves = [(r(1), r(2)), (r(2), r(3)), (r(3), r(1))]
        order = resolve_parallel_moves(moves, lambda k: r(7))
        state = self._apply(order, {r(1): "a", r(2): "b", r(3): "c"})
        assert (state[r(1)], state[r(2)], state[r(3)]) == ("b", "c", "a")

    def test_self_move_elided(self):
        assert resolve_parallel_moves([(r(1), r(1))], lambda k: r(7)) == []

    def test_emit_moves_picks_fmov_for_floats(self):
        out = []
        emit_moves([(Reg("f", 1), Reg("f", 5))], out.append, baseline_spec())
        assert out[0].op == "fmov"


class TestLegalizer:
    def _legal(self, spec):
        out = []
        return Legalizer(spec, out.append), out

    def test_small_constant_single_li(self):
        legal, out = self._legal(branchreg_spec())
        legal.load_constant(r(1), 100)
        assert [i.op for i in out] == ["li"]

    def test_large_constant_sethi_addlo(self):
        legal, out = self._legal(branchreg_spec())
        legal.load_constant(r(1), 123456)
        assert [i.op for i in out] == ["sethi", "addlo"]

    def test_aligned_constant_skips_addlo(self):
        legal, out = self._legal(branchreg_spec())
        legal.load_constant(r(1), 1 << 12)  # low 9 bits clear
        assert [i.op for i in out] == ["sethi"]

    def test_imm_operand_passthrough(self):
        legal, out = self._legal(baseline_spec())
        operand = legal.imm_operand(100)
        assert operand == Imm(100)
        assert out == []

    def test_imm_operand_materialises_when_too_big(self):
        legal, out = self._legal(branchreg_spec())
        operand = legal.imm_operand(100000)
        assert operand == legal.scratch
        assert out  # emitted the materialisation

    def test_baseline_wider_range(self):
        base, base_out = self._legal(baseline_spec())
        brm, brm_out = self._legal(branchreg_spec())
        base.load_constant(r(1), 3000)
        brm.load_constant(r(1), 3000)
        assert len(base_out) == 1  # fits 13-bit
        assert len(brm_out) == 2  # exceeds 10-bit

    def test_add_immediate_zero_is_mov_or_nothing(self):
        legal, out = self._legal(baseline_spec())
        legal.add_immediate(r(1), r(1), 0)
        assert out == []
        legal.add_immediate(r(1), r(2), 0)
        assert out[0].op == "mov"


class TestFrameLayout:
    def _fn_with_locals(self, sizes):
        fn = IRFunction("f")
        for i, size in enumerate(sizes):
            fn.add_local("l%d" % i, size)
        return fn

    def test_locals_packed_word_aligned(self):
        fn = self._fn_with_locals([4, 1, 8])
        frame = FrameLayout(fn, set(), [])
        offsets = [frame.local_offset(l) for l in fn.locals]
        assert offsets == [0, 4, 8]

    def test_save_slots_after_locals(self):
        fn = self._fn_with_locals([4])
        frame = FrameLayout(fn, {Reg("r", 8)}, ["RT"])
        assert frame.save_offset(Reg("r", 8)) == 4
        assert frame.save_offset("RT") == 8

    def test_size_aligned_to_8(self):
        fn = self._fn_with_locals([4])
        frame = FrameLayout(fn, set(), [])
        assert frame.size == 8

    def test_empty_frame(self):
        frame = FrameLayout(IRFunction("f"), set(), [])
        assert frame.size == 0


class TestScheduleCompares:
    def _mfn(self, instrs):
        return MachineFunction("t", list(instrs))

    def _cmpset(self, src_index=1):
        spec = branchreg_spec()
        return MInstr(
            "cmpset", dst=Reg("b", spec.br_link),
            srcs=[r(src_index), Imm(0)], cond="eq", btrue=4,
        )

    def test_independent_instruction_hoisted_over(self):
        spec = branchreg_spec()
        carrier = mnoop(br=spec.br_link)
        mfn = self._mfn([
            MInstr("li", dst=r(2), srcs=[Imm(5)]),
            self._cmpset(src_index=1),
            carrier,
        ])
        assert schedule_compares(mfn, spec) == 1
        assert mfn.instrs[0].op == "cmpset"

    def test_dependent_instruction_blocks(self):
        spec = branchreg_spec()
        carrier = mnoop(br=spec.br_link)
        mfn = self._mfn([
            MInstr("li", dst=r(1), srcs=[Imm(5)]),  # feeds the compare
            self._cmpset(src_index=1),
            carrier,
        ])
        assert schedule_compares(mfn, spec) == 0

    def test_never_crosses_label_or_carrier(self):
        spec = branchreg_spec()
        mfn = self._mfn([
            MInstr("label", label="L"),
            self._cmpset(),
            mnoop(br=spec.br_link),
        ])
        assert schedule_compares(mfn, spec) == 0

    def test_hoist_bounded(self):
        spec = branchreg_spec()
        instrs = [
            MInstr("li", dst=r(i + 2), srcs=[Imm(i)]) for i in range(6)
        ]
        instrs.append(self._cmpset())
        instrs.append(mnoop(br=spec.br_link))
        mfn = self._mfn(instrs)
        gained = schedule_compares(mfn, spec, max_hoist=3)
        assert gained == 3
