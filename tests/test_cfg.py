"""Tests for CFG construction, dominators, loops, liveness, frequency."""

from repro.cfg.build import build_cfg
from repro.cfg.dom import compute_dominators, dominates
from repro.cfg.freq import estimate_frequencies
from repro.cfg.liveness import compute_liveness, per_instruction_liveness
from repro.cfg.loops import ensure_preheader, find_loops, innermost_loop_of
from repro.lang.frontend import compile_to_ir


def fn_of(source, name="main"):
    return compile_to_ir(source).functions[name]


LOOP_SRC = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 10; i++)
        n += i;
    return n;
}
"""

NESTED_SRC = """
int main() {
    int i; int j; int n = 0;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            n++;
    return n;
}
"""

DIAMOND_SRC = """
int main() {
    int x = 1;
    if (x) x = 2; else x = 3;
    return x;
}
"""


class TestBuild:
    def test_straight_line_single_block(self):
        fn = fn_of("int main() { int a = 1; int b = 2; return a + b; }")
        cfg = build_cfg(fn)
        assert len(cfg.blocks) == 1
        assert cfg.entry is cfg.blocks[0]

    def test_diamond_shape(self):
        fn = fn_of(DIAMOND_SRC)
        cfg = build_cfg(fn)
        # entry, then, else, join (possibly a separate exit block)
        assert len(cfg.entry.succs) == 2
        join_candidates = [b for b in cfg.blocks if len(b.preds) == 2]
        assert join_candidates

    def test_labels_map_to_blocks(self):
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        for name, block in cfg.label_to_block.items():
            assert name in block.labels
            assert block in cfg.blocks

    def test_terminator_edges_consistent(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        for block in cfg.blocks:
            for succ in block.succs:
                assert block in succ.preds
            for pred in block.preds:
                assert block in pred.succs

    def test_linearize_roundtrip_preserves_instructions(self):
        fn = fn_of(LOOP_SRC)
        before = [repr(i) for i in fn.instrs if not i.is_label()]
        cfg = build_cfg(fn)
        fn.instrs = cfg.linearize()
        after = [repr(i) for i in fn.instrs if not i.is_label()]
        assert before == after

    def test_unreachable_code_removed(self):
        src = """
        int main() {
            return 1;
        }
        int dead() { return 2; }
        int caller() { return dead(); }
        """
        prog = compile_to_ir(src)
        assert "dead" not in prog.functions  # trimmed at frontend
        fn = prog.functions["main"]
        cfg = build_cfg(fn)
        assert all(
            b is cfg.entry or b.preds for b in cfg.blocks
        )


class TestDominators:
    def test_entry_dominates_all(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        dom = compute_dominators(cfg)
        for block in cfg.blocks:
            assert dominates(dom, cfg.entry, block)

    def test_self_domination(self):
        fn = fn_of(DIAMOND_SRC)
        cfg = build_cfg(fn)
        dom = compute_dominators(cfg)
        for block in cfg.blocks:
            assert dominates(dom, block, block)

    def test_branch_arms_do_not_dominate_join(self):
        fn = fn_of(DIAMOND_SRC)
        cfg = build_cfg(fn)
        dom = compute_dominators(cfg)
        join = next(b for b in cfg.blocks if len(b.preds) == 2)
        for pred in join.preds:
            if pred is not cfg.entry:
                assert not dominates(dom, pred, join) or pred is join


class TestLoops:
    def test_single_loop_found(self):
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        assert len(loops) == 1
        assert loops[0].depth == 1

    def test_nested_loops_depths(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        assert sorted(l.depth for l in loops) == [1, 2]
        inner = max(loops, key=lambda l: l.depth)
        outer = min(loops, key=lambda l: l.depth)
        assert inner.parent is outer
        assert inner.blocks < outer.blocks

    def test_no_loops_in_straight_line(self):
        fn = fn_of("int main() { return 3; }")
        cfg = build_cfg(fn)
        assert find_loops(cfg) == []

    def test_loop_depth_annotation(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        find_loops(cfg)
        assert max(b.loop_depth for b in cfg.blocks) == 2
        assert cfg.entry.loop_depth == 0

    def test_innermost_loop_of(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        inner = max(loops, key=lambda l: l.depth)
        some_inner_block = next(iter(inner.blocks))
        assert innermost_loop_of(loops, some_inner_block) is inner

    def test_preheader_exists_and_is_outside(self):
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        pre = ensure_preheader(cfg, loops[0], fn)
        assert pre not in loops[0].blocks
        assert loops[0].header in pre.succs

    def test_preheader_idempotent(self):
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        pre1 = ensure_preheader(cfg, loops[0], fn)
        pre2 = ensure_preheader(cfg, loops[0], fn)
        assert pre1 is pre2

    def test_while_loop_header_is_test_block(self):
        # Rotated loops: `jmp test; body: ...; test: cond -> body`.
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        header = loops[0].header
        assert any(label.startswith("Ltest") for label in header.labels)


class TestFrequency:
    def test_loop_weighting(self):
        fn = fn_of(NESTED_SRC)
        cfg = build_cfg(fn)
        loops = find_loops(cfg)
        estimate_frequencies(cfg, loops)
        assert cfg.entry.freq == 1.0
        assert max(b.freq for b in cfg.blocks) == 100.0


class TestLiveness:
    def test_dead_value_not_live(self):
        fn = fn_of("int main() { int a = 1; return 2; }")
        cfg = build_cfg(fn)
        live_in, live_out = compute_liveness(cfg)
        # Nothing is live out of the final block.
        last = cfg.blocks[-1]
        assert live_out[last] == set()

    def test_loop_carried_value_live_around_backedge(self):
        fn = fn_of(LOOP_SRC)
        cfg = build_cfg(fn)
        live_in, live_out = compute_liveness(cfg)
        loops = find_loops(cfg)
        header = loops[0].header
        assert live_in[header]  # i and n circulate

    def test_per_instruction_liveness_shrinks_after_last_use(self):
        fn = fn_of("int main() { int a = 1; int b = a + 2; return b; }")
        cfg = build_cfg(fn)
        _in, out = compute_liveness(cfg)
        block = cfg.entry
        after = per_instruction_liveness(block, out[block])
        assert len(after) == len(block.instrs)
        # The return value register is live right up to the ret.
        assert after[-1] == set()
