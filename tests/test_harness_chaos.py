"""Harness-level chaos testing: seeded fault plans, cache corruption,
and the convergence guarantee (``repro chaos``).

The acceptance bar from ``docs/ROBUSTNESS.md``: a campaign that SIGKILLs
workers and corrupts artifact-cache entries mid-run must still produce a
suite result byte-identical to an unperturbed serial run.
"""

import random

import pytest

from repro.fault.harness_chaos import (
    HarnessChaosError,
    apply_chaos,
    chaos_plan,
    corrupt_cache_entries,
    render_chaos,
    run_chaos,
)

NAMES = ("wc", "cal", "sort")


class TestChaosPlan:
    def test_deterministic_for_same_seed(self):
        a, placed_a = chaos_plan(NAMES, random.Random(7), kills=2, raises=1,
                                 delays=3)
        b, placed_b = chaos_plan(NAMES, random.Random(7), kills=2, raises=1,
                                 delays=3)
        assert a == b
        assert placed_a == placed_b

    def test_failing_actions_capped_below_attempt_budget(self):
        # With max_attempts=3 a workload may absorb at most 2 failing
        # actions -- a converging plan must leave one attempt clean.
        plan, placed = chaos_plan(
            NAMES, random.Random(0), kills=50, raises=50, max_attempts=3
        )
        for actions in plan.values():
            failing = [a for a in actions if a[0] in ("kill", "raise")]
            assert len(failing) <= 2
        assert placed["kill"] + placed["raise"] <= len(NAMES) * 2

    def test_delays_are_not_capped(self):
        plan, placed = chaos_plan(
            NAMES, random.Random(0), delays=9, max_attempts=2
        )
        assert placed["delay"] == 9
        assert sum(
            1 for acts in plan.values() for a in acts if a[0] == "delay"
        ) == 9

    def test_empty_request_yields_empty_plan(self):
        plan, placed = chaos_plan(NAMES, random.Random(0))
        assert plan == {}
        assert all(count == 0 for count in placed.values())


class TestApplyChaos:
    def test_raise_action(self):
        with pytest.raises(HarnessChaosError, match="flaky"):
            apply_chaos(("raise", "flaky"))

    def test_chaos_error_is_not_a_typed_repro_error(self):
        # Retryability hinges on this: typed ReproErrors are
        # deterministic and never retried; chaos faults must look
        # transient to the supervisor.
        from repro.errors import ReproError

        assert not issubclass(HarnessChaosError, ReproError)

    def test_delay_action(self):
        import time

        start = time.monotonic()
        apply_chaos(("delay", 0.05))
        assert time.monotonic() - start >= 0.05

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            apply_chaos(("explode",))


class TestCorruptCacheEntries:
    def test_corrupts_requested_count(self, tmp_path):
        for i in range(4):
            (tmp_path / ("entry%d.mpc" % i)).write_bytes(b"x" * 100)
        (tmp_path / "not-an-entry.lock").write_bytes(b"pid")
        before = {
            p.name: p.read_bytes() for p in tmp_path.iterdir()
        }
        paths = corrupt_cache_entries(str(tmp_path), 2, random.Random(3))
        assert len(paths) == 2
        changed = [
            p.name for p in tmp_path.iterdir()
            if p.read_bytes() != before[p.name]
        ]
        assert sorted(changed) == sorted(p.rsplit("/", 1)[-1] for p in paths)

    def test_empty_cache_is_a_noop(self, tmp_path):
        assert corrupt_cache_entries(str(tmp_path), 2, random.Random(0)) == []


class TestCampaigns:
    def test_acceptance_campaign_converges(self):
        # The headline acceptance criterion: >=3 worker SIGKILLs and
        # >=2 corrupted cache entries, byte-identical convergence.
        summary = run_chaos(
            seed=7, campaigns=1, jobs=2, subset=NAMES, limit=200_000,
            kills=3, raises=2, delays=1, corrupt=2,
        )
        assert summary["divergent"] == 0
        assert summary["converged"] == 1
        assert summary["injected"]["kill"] >= 3
        assert summary["corrupted"] >= 2
        assert summary["telemetry"]["harness.worker_crashes"] >= 1

    def test_divergence_is_reported_per_campaign(self):
        summary = run_chaos(
            seed=1, campaigns=2, jobs=2, subset=("wc",), limit=200_000,
            kills=0, raises=1, delays=0, corrupt=0,
        )
        assert summary["campaigns"] == 2
        assert summary["divergent"] == 0
        for record in summary["records"]:
            assert record["converged"] is True

    def test_render_mentions_convergence(self):
        summary = run_chaos(
            seed=3, campaigns=1, jobs=2, subset=("wc",), limit=200_000,
            kills=1, raises=0, delays=0, corrupt=1,
        )
        text = render_chaos(summary)
        assert "1/1" in text
        assert "DIVERGED" not in text
