"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import METRICS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self, registry):
        registry.counter("x").inc(2)
        assert registry.counter("x").value == 2

    def test_labels_split_instruments(self, registry):
        registry.counter("x", machine="baseline").inc(1)
        registry.counter("x", machine="branchreg").inc(2)
        assert registry.counter("x", machine="baseline").value == 1
        assert registry.counter("x", machine="branchreg").value == 2

    def test_label_order_irrelevant(self, registry):
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 1

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_name_label_allowed(self, registry):
        # "name" as a label key must not collide with the positional arg.
        registry.counter("x", name="wc").inc()
        assert registry.counter("x", name="wc").value == 1


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_summary_stats(self, registry):
        h = registry.histogram("sizes")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == 3

    def test_bucketed(self, registry):
        h = registry.histogram("lat", buckets=(10, 100))
        for v in (5, 50, 500, 7):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]

    def test_empty_mean_zero(self, registry):
        assert registry.histogram("empty").mean == 0.0


class TestRegistry:
    def test_snapshot_shape(self, registry):
        registry.counter("c", m="b").inc(3)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["counters"] == [{"name": "c", "labels": {"m": "b"}, "value": 3}]
        assert snap["gauges"][0]["value"] == 1
        assert snap["histograms"][0]["count"] == 1
        assert snap["histograms"][0]["min"] == 2.0

    def test_snapshot_json_serialisable(self, registry):
        import json

        registry.counter("c").inc()
        registry.histogram("h", buckets=(1,)).observe(0.5)
        json.dumps(registry.snapshot())

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("c").value == 0

    def test_global_registry_exists(self):
        assert isinstance(METRICS, MetricsRegistry)
