"""Tests for the metrics registry (repro.obs.metrics)."""

import math
import random

import pytest

from repro.obs.metrics import METRICS, SAMPLE_CAP, MetricsRegistry


def _oracle_percentile(values, q):
    """Sorted-list linear-interpolation percentile (numpy's default)."""
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[int(rank)])
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self, registry):
        registry.counter("x").inc(2)
        assert registry.counter("x").value == 2

    def test_labels_split_instruments(self, registry):
        registry.counter("x", machine="baseline").inc(1)
        registry.counter("x", machine="branchreg").inc(2)
        assert registry.counter("x", machine="baseline").value == 1
        assert registry.counter("x", machine="branchreg").value == 2

    def test_label_order_irrelevant(self, registry):
        registry.counter("x", a="1", b="2").inc()
        assert registry.counter("x", b="2", a="1").value == 1

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_name_label_allowed(self, registry):
        # "name" as a label key must not collide with the positional arg.
        registry.counter("x", name="wc").inc()
        assert registry.counter("x", name="wc").value == 1


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_summary_stats(self, registry):
        h = registry.histogram("sizes")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9
        assert h.min == 1
        assert h.max == 5
        assert h.mean == 3

    def test_bucketed(self, registry):
        h = registry.histogram("lat", buckets=(10, 100))
        for v in (5, 50, 500, 7):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]

    def test_empty_mean_zero(self, registry):
        assert registry.histogram("empty").mean == 0.0


class TestHistogramPercentiles:
    def test_empty_is_zero(self, registry):
        assert registry.histogram("empty").percentile(50) == 0.0

    def test_single_observation_is_every_percentile(self, registry):
        h = registry.histogram("one")
        h.observe(42.5)
        for q in (0, 50, 95, 99, 100):
            assert h.percentile(q) == 42.5

    def test_matches_sorted_list_oracle(self, registry):
        rng = random.Random(7)
        values = [rng.uniform(0, 1000) for _ in range(257)]
        h = registry.histogram("h")
        for v in values:
            h.observe(v)
        for q in (0, 1, 25, 50, 75, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(
                _oracle_percentile(values, q)
            )

    def test_duplicate_heavy_distribution(self, registry):
        values = [5.0] * 90 + [100.0] * 10
        h = registry.histogram("h")
        for v in values:
            h.observe(v)
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == pytest.approx(
            _oracle_percentile(values, 99)
        )

    def test_sample_cap_overflow_counted(self, registry):
        h = registry.histogram("h")
        for i in range(SAMPLE_CAP + 10):
            h.observe(float(i))
        assert len(h.samples) == SAMPLE_CAP
        assert h.sample_overflow == 10
        assert h.count == SAMPLE_CAP + 10

    def test_snapshot_carries_percentiles(self, registry):
        h = registry.histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        row = registry.snapshot()["histograms"][0]
        assert row["p50"] == pytest.approx(2.5)
        assert row["p95"] == pytest.approx(_oracle_percentile([1, 2, 3, 4], 95))
        assert row["samples"] == [1.0, 2.0, 3.0, 4.0]
        assert row["sample_overflow"] == 0

    def test_merge_snapshot_folds_samples(self, registry):
        other = MetricsRegistry()
        for v in (1.0, 2.0):
            registry.histogram("h").observe(v)
        for v in (3.0, 4.0):
            other.histogram("h").observe(v)
        registry.merge_snapshot(other.snapshot())
        h = registry.histogram("h")
        assert sorted(h.samples) == [1.0, 2.0, 3.0, 4.0]
        assert h.percentile(50) == pytest.approx(2.5)


class TestRegistry:
    def test_snapshot_shape(self, registry):
        registry.counter("c", m="b").inc(3)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["counters"] == [{"name": "c", "labels": {"m": "b"}, "value": 3}]
        assert snap["gauges"][0]["value"] == 1
        assert snap["histograms"][0]["count"] == 1
        assert snap["histograms"][0]["min"] == 2.0

    def test_snapshot_json_serialisable(self, registry):
        import json

        registry.counter("c").inc()
        registry.histogram("h", buckets=(1,)).observe(0.5)
        json.dumps(registry.snapshot())

    def test_reset(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("c").value == 0

    def test_global_registry_exists(self):
        assert isinstance(METRICS, MetricsRegistry)
