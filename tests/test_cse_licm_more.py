"""Focused tests for constant pooling (CSE) and additional LICM cases."""

from repro.cfg.build import build_cfg
from repro.lang.frontend import compile_to_ir
from repro.opt.cse import pool_constants
from repro.opt.legalize import legalize_immediates
from repro.opt.pipeline import optimize_function
from repro.machine.spec import branchreg_spec
from tests.conftest import run_both


def prepared_fn(source, name="main"):
    fn = compile_to_ir(source).functions[name]
    optimize_function(fn)
    return fn


def count_op_key(fn, op, predicate=lambda ins: True):
    return sum(
        1 for ins in fn.instrs if ins.op == op and predicate(ins)
    )


class TestPoolConstants:
    def test_duplicate_addresses_pooled(self):
        src = """
        int heap[8];
        int main() {
            heap[0] = 1;
            heap[1] = heap[0] + 2;
            heap[2] = heap[1] + heap[0];
            return heap[2];
        }
        """
        fn = prepared_fn(src)
        before = count_op_key(fn, "la")
        assert before >= 2
        pooled = pool_constants(fn)
        assert pooled >= 2
        assert count_op_key(fn, "la") < before

    def test_single_use_not_pooled(self):
        src = "int g; int main() { return g; }"
        fn = prepared_fn(src)
        assert pool_constants(fn) == 0

    def test_duplicate_large_constants_pooled_after_legalize(self):
        src = """
        int main() {
            int a; int b;
            a = getchar() + 70000;
            b = getchar() + 70000;
            return a + b;
        }
        """
        fn = prepared_fn(src)
        legalize_immediates(fn, branchreg_spec())
        pooled = pool_constants(fn)
        assert pooled >= 2

    def test_semantics_preserved(self):
        src = """
        int data[4];
        int main() {
            int i;
            for (i = 0; i < 4; i++) data[i] = i * 7;
            print_int(data[0] + data[1] + data[2] + data[3]);
            putchar(10);
            return 0;
        }
        """
        pair = run_both(src)
        assert pair.output == b"42\n"

    def test_multiply_defined_register_not_pooled(self):
        # Build IR where one register receives li twice (via a loop-free
        # reassignment); pooling must skip it.
        src = """
        int main() {
            int a = 5;
            a = 5;      /* same constant, same variable */
            print_int(a); putchar(10);
            return 0;
        }
        """
        pair = run_both(src)
        assert pair.output == b"5\n"

    def test_entry_definitions_dominate_uses(self):
        fn = prepared_fn(
            """
            int g;
            int main() {
                if (getchar()) g = 1; else g = 2;
                return g;
            }
            """
        )
        pooled = pool_constants(fn)
        if pooled:
            # The pooled defs must appear before any other instruction.
            first_real = next(i for i in fn.instrs if not i.is_label())
            assert first_real.op in ("li", "la")


class TestCseEndToEnd:
    def test_global_heavy_function_improves_on_both_machines(self):
        src = """
        int grid[6][6];
        int main() {
            int i; int j; int n = 0;
            for (i = 0; i < 6; i++)
                for (j = 0; j < 6; j++)
                    grid[i][j] = i * j;
            for (i = 0; i < 6; i++)
                n += grid[i][i];
            print_int(n); putchar(10);
            return 0;
        }
        """
        pair = run_both(src)
        expected = sum(i * i for i in range(6))
        assert pair.output == b"%d\n" % expected
        # The branch-register machine should not need wildly more
        # instructions despite its narrower immediates.
        ratio = pair.branchreg.instructions / pair.baseline.instructions
        assert ratio < 1.10
