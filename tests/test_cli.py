"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def demo_c(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(
        """
        int main() {
            int c;
            int count = 0;
            while ((c = getchar()) != -1)
                count++;
            print_int(count);
            putchar(10);
            return 0;
        }
        """
    )
    return str(path)


@pytest.fixture
def stdin_file(tmp_path):
    path = tmp_path / "input.txt"
    path.write_bytes(b"hello")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "x.c"])
        assert args.machine == "both"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestCommands:
    def test_run_both(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("5\n")
        assert "baseline" in out and "branch-reg" in out

    def test_run_single_machine(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file, "--machine", "baseline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline:" in out

    def test_run_without_stdin(self, demo_c, capsys):
        rc = main(["run", demo_c])
        out = capsys.readouterr().out
        assert out.startswith("0\n")

    def test_asm_branchreg(self, demo_c, capsys):
        main(["asm", demo_c, "--function", "main"])
        out = capsys.readouterr().out
        assert "main:" in out
        assert "b[0]=b[" in out  # carriers present

    def test_asm_baseline(self, demo_c, capsys):
        main(["asm", demo_c, "--machine", "baseline", "--function", "main"])
        out = capsys.readouterr().out
        assert "PC=" in out

    def test_workloads_listing(self, capsys):
        main(["workloads"])
        out = capsys.readouterr().out
        assert "dhrystone" in out and "vpcc" in out

    def test_table1_subset(self, capsys):
        main(["table1", "--subset", "wc"])
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cycles_subset(self, capsys):
        main(["cycles", "--stages", "3", "--subset", "wc"])
        out = capsys.readouterr().out
        assert "stages" in out


class TestJsonOutput:
    def test_run_json(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["output"] == "5\n"
        assert doc["baseline"]["instructions"] > 0
        assert doc["branchreg"]["machine"] == "branchreg"
        assert "instr_change" in doc["derived"]

    def test_run_single_machine_json(self, demo_c, capsys):
        rc = main(["run", demo_c, "--machine", "branchreg", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["machine"] == "branchreg"
        assert doc["output"] == "0\n"

    def test_table1_json(self, capsys):
        rc = main(["table1", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in doc["programs"]] == ["wc"]
        assert doc["totals"]["baseline"]["instructions"] > 0
        assert "transfer_fraction" in doc["claims"]

    def test_cycles_json(self, capsys):
        rc = main(["cycles", "--stages", "3,4", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [e["stages"] for e in doc["estimates"]] == [3, 4]
        est = doc["estimates"][0]
        assert est["branchreg"]["cycles"] < est["baseline"]["cycles"]

    def test_cache_json(self, capsys):
        rc = main(["cache", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"]
        assert {"config", "machine", "cycles", "miss_rate"} <= set(doc["runs"][0])


class TestVerbosity:
    def teardown_method(self):
        from repro.obs.log import configure

        configure(0)

    def test_verbose_flag_sets_log_level(self, demo_c, capsys):
        from repro.obs.log import log

        main(["-v", "run", demo_c])
        assert log.level == logging.INFO
        main(["-vv", "run", demo_c])
        assert log.level == logging.DEBUG

    def test_quiet_flag_sets_log_level(self, demo_c, capsys):
        from repro.obs.log import log

        main(["-q", "run", demo_c])
        assert log.level == logging.ERROR

    def test_verbose_emits_diagnostics(self, demo_c, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            main(["-vv", "run", demo_c])
        assert any("compiled" in r.message for r in caplog.records)
