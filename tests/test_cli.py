"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def demo_c(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(
        """
        int main() {
            int c;
            int count = 0;
            while ((c = getchar()) != -1)
                count++;
            print_int(count);
            putchar(10);
            return 0;
        }
        """
    )
    return str(path)


@pytest.fixture
def stdin_file(tmp_path):
    path = tmp_path / "input.txt"
    path.write_bytes(b"hello")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "x.c"])
        assert args.machine == "both"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestCommands:
    def test_run_both(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("5\n")
        assert "baseline" in out and "branch-reg" in out

    def test_run_single_machine(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file, "--machine", "baseline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline:" in out

    def test_run_without_stdin(self, demo_c, capsys):
        rc = main(["run", demo_c])
        out = capsys.readouterr().out
        assert out.startswith("0\n")

    def test_asm_branchreg(self, demo_c, capsys):
        main(["asm", demo_c, "--function", "main"])
        out = capsys.readouterr().out
        assert "main:" in out
        assert "b[0]=b[" in out  # carriers present

    def test_asm_baseline(self, demo_c, capsys):
        main(["asm", demo_c, "--machine", "baseline", "--function", "main"])
        out = capsys.readouterr().out
        assert "PC=" in out

    def test_workloads_listing(self, capsys):
        main(["workloads"])
        out = capsys.readouterr().out
        assert "dhrystone" in out and "vpcc" in out

    def test_table1_subset(self, capsys):
        main(["table1", "--subset", "wc"])
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cycles_subset(self, capsys):
        main(["cycles", "--stages", "3", "--subset", "wc"])
        out = capsys.readouterr().out
        assert "stages" in out


class TestJsonOutput:
    def test_run_json(self, demo_c, stdin_file, capsys):
        rc = main(["run", demo_c, "--stdin", stdin_file, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["output"] == "5\n"
        assert doc["baseline"]["instructions"] > 0
        assert doc["branchreg"]["machine"] == "branchreg"
        assert "instr_change" in doc["derived"]

    def test_run_single_machine_json(self, demo_c, capsys):
        rc = main(["run", demo_c, "--machine", "branchreg", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["machine"] == "branchreg"
        assert doc["output"] == "0\n"

    def test_table1_json(self, capsys):
        rc = main(["table1", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in doc["programs"]] == ["wc"]
        assert doc["totals"]["baseline"]["instructions"] > 0
        assert "transfer_fraction" in doc["claims"]

    def test_cycles_json(self, capsys):
        rc = main(["cycles", "--stages", "3,4", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [e["stages"] for e in doc["estimates"]] == [3, 4]
        est = doc["estimates"][0]
        assert est["branchreg"]["cycles"] < est["baseline"]["cycles"]

    def test_cache_json(self, capsys):
        rc = main(["cache", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"]
        assert {"config", "machine", "cycles", "miss_rate"} <= set(doc["runs"][0])


class TestProfileCommand:
    def test_listing(self, capsys):
        rc = main(["profile", "wc"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile: wc on baseline" in out
        assert "hot source lines" in out
        assert "delay slots" in out

    def test_branchreg_json(self, capsys):
        rc = main(["profile", "wc", "--machine", "branchreg", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["machine"] == "branchreg"
        assert doc["pc_total"] == doc["instructions"]
        assert "carriers" in doc

    def test_out_writes_validated_profile(self, tmp_path, capsys):
        from repro.obs.profile import load_profile

        path = str(tmp_path / "wc.profile.json")
        rc = main(["profile", "wc", "--out", path])
        assert rc == 0
        doc = load_profile(path)
        assert doc["workload"] == "wc"

    def test_unknown_workload_fails(self, capsys):
        rc = main(["profile", "nope"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_bad_top_rejected(self, capsys):
        rc = main(["profile", "wc", "--top", "0"])
        assert rc == 2


class TestDiffCommand:
    @pytest.fixture(scope="class")
    def manifests(self, tmp_path_factory):
        from repro.obs.report import run_report, save_report

        tmp = tmp_path_factory.mktemp("diff")
        result = run_report(subset=("wc",))
        path_a = save_report(result, str(tmp / "a.json"))
        doc = json.loads(json.dumps(result["manifest"]))
        doc["programs"][0]["baseline"]["instructions"] += 7
        path_b = str(tmp / "b.json")
        with open(path_b, "w") as handle:
            json.dump(doc, handle)
        return path_a, path_b

    def test_identical_manifests_exit_zero(self, manifests, capsys):
        path_a, _ = manifests
        rc = main(["diff", path_a, path_a])
        out = capsys.readouterr().out
        assert rc == 0
        assert "result: OK" in out

    def test_drift_exits_nonzero(self, manifests, capsys):
        path_a, path_b = manifests
        rc = main(["diff", path_a, path_b])
        out = capsys.readouterr().out
        assert rc == 1
        assert "BREACH" in out and "DRIFT DETECTED" in out

    def test_threshold_tolerates_drift(self, manifests, capsys):
        path_a, path_b = manifests
        rc = main(["diff", path_a, path_b, "--threshold", "0.01"])
        assert rc == 0

    def test_paper_gate_passes_on_fresh_run(self, manifests, capsys):
        path_a, _ = manifests
        rc = main(["diff", path_a, "--paper"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pinned Table I" in out
        assert "note:" in out

    def test_paper_gate_fails_on_drift(self, manifests, capsys):
        _, path_b = manifests
        rc = main(["diff", path_b, "--paper"])
        assert rc == 1

    def test_paper_with_two_manifests_rejected(self, manifests, capsys):
        path_a, path_b = manifests
        rc = main(["diff", path_a, path_b, "--paper"])
        assert rc == 2

    def test_missing_second_manifest_rejected(self, manifests, capsys):
        path_a, _ = manifests
        rc = main(["diff", path_a])
        assert rc == 2

    def test_unreadable_manifest_rejected(self, manifests, tmp_path, capsys):
        path_a, _ = manifests
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["diff", path_a, str(bad)])
        assert rc == 2

    def test_negative_threshold_rejected(self, manifests, capsys):
        path_a, _ = manifests
        rc = main(["diff", path_a, path_a, "--threshold", "-0.5"])
        assert rc == 2


class TestOracleCommand:
    def test_subset_equivalent(self, capsys):
        rc = main(["oracle", "--subset", "wc"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "machines equivalent" in out
        assert "data bytes compared" in out

    def test_json(self, capsys):
        rc = main(["oracle", "--subset", "wc", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["equivalent"] is True
        assert doc["workloads"][0]["name"] == "wc"
        assert doc["workloads"][0]["data_bytes"] >= 0  # wc has no globals

    def test_unknown_workload_rejected(self, capsys):
        rc = main(["oracle", "--subset", "nope"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err


class TestFuzzCommand:
    def test_fixed_seed_passes(self, capsys):
        rc = main(["fuzz", "--count", "5", "--seed", "20260806"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "5/5 case(s) checked, 0 failure(s)" in out

    def test_json(self, capsys):
        rc = main(["fuzz", "--count", "3", "--seed", "7", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["checked"] == 3
        assert doc["failures"] == []

    def test_bad_count_rejected(self, capsys):
        rc = main(["fuzz", "--count", "0"])
        assert rc == 2


class TestTriageCommand:
    def test_triage_renders_failures(self, tmp_path, capsys):
        from repro.obs.report import run_report, save_report

        result = run_report(subset=("wc",), fault_tolerant=True)
        # inject a synthetic failure record so triage has work to do
        result["manifest"]["failures"] = [
            {
                "workload": "wc", "error": "RuntimeLimitExceeded",
                "message": "exceeded 100 instructions in wc",
                "machine": "baseline", "pc": 4096, "icount": 100,
                "function": "main", "line": 3, "edges": [],
            }
        ]
        path = save_report(result, str(tmp_path / "m.json"))
        rc = main(["triage", path])
        out = capsys.readouterr().out
        assert rc == 1
        assert "wc: RuntimeLimitExceeded" in out
        assert "pc=0x1000" in out

    def test_triage_clean_manifest(self, tmp_path, capsys):
        from repro.obs.report import run_report, save_report

        result = run_report(subset=("wc",), fault_tolerant=True)
        path = save_report(result, str(tmp_path / "m.json"))
        rc = main(["triage", path])
        assert rc == 0
        assert "nothing to triage" in capsys.readouterr().out

    def test_triage_unreadable_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["triage", str(bad)])
        assert rc == 2


class TestReportFaultTolerant:
    def test_fault_tolerant_flag(self, tmp_path, capsys):
        rc = main([
            "report", "--subset", "wc", "--fault-tolerant",
            "--out", str(tmp_path / "m.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Failures: 0" in out


class TestVerbosity:
    def teardown_method(self):
        from repro.obs.log import configure

        configure(0)

    def test_verbose_flag_sets_log_level(self, demo_c, capsys):
        from repro.obs.log import log

        main(["-v", "run", demo_c])
        assert log.level == logging.INFO
        main(["-vv", "run", demo_c])
        assert log.level == logging.DEBUG

    def test_quiet_flag_sets_log_level(self, demo_c, capsys):
        from repro.obs.log import log

        main(["-q", "run", demo_c])
        assert log.level == logging.ERROR

    def test_verbose_emits_diagnostics(self, demo_c, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            main(["-vv", "run", demo_c])
        assert any("compiled" in r.message for r in caplog.records)


class TestSuperviseCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 0
        assert args.campaigns == 5
        assert args.kills == 3
        assert args.raises == 2
        assert args.delays == 2
        assert args.corrupt == 2
        assert args.hangs == 0
        assert args.keep_going is False
        rep = build_parser().parse_args(
            ["report", "--supervise", "--max-attempts", "5",
             "--checkpoint", "ck.jsonl", "--limit-override", "wc=5"]
        )
        assert rep.supervise is True
        assert rep.max_attempts == 5
        assert rep.checkpoint == "ck.jsonl"
        assert rep.limit_override == ["wc=5"]
        t1 = build_parser().parse_args(["table1", "--supervise", "--resume"])
        assert t1.supervise is True
        assert t1.resume is True

    def test_resume_alone_uses_default_checkpoint(self):
        from repro.cli import _resolve_checkpoint
        from repro.harness.checkpoint import DEFAULT_CHECKPOINT

        args = build_parser().parse_args(["table1", "--resume"])
        assert _resolve_checkpoint(args) == DEFAULT_CHECKPOINT
        args = build_parser().parse_args(["table1"])
        assert _resolve_checkpoint(args) is None

    def test_bad_limit_override_exits_2(self, capsys):
        rc = main(
            ["report", "--subset", "wc", "--limit", "200000",
             "--limit-override", "wc"]
        )
        assert rc == 2
        assert "NAME=LIMIT" in capsys.readouterr().err
        rc = main(
            ["report", "--subset", "wc", "--limit", "200000",
             "--limit-override", "wc=lots"]
        )
        assert rc == 2

    def test_supervised_table1(self, capsys):
        rc = main(["table1", "--subset", "wc", "--supervise", "--jobs", "2"])
        assert rc == 0
        assert "Table I" in capsys.readouterr().out

    def test_supervised_report_renders_supervision(self, tmp_path, capsys):
        rc = main(
            ["report", "--subset", "wc", "--limit", "200000", "--supervise",
             "--jobs", "2", "--out", str(tmp_path / "m.json")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Supervision:" in out
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["schema"] == "repro.run-manifest/7"
        assert doc["supervision"]["enabled"] is True

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        base = [
            "report", "--subset", "wc,cal", "--limit", "200000",
            "--jobs", "2", "--supervise", "--checkpoint", ck,
        ]
        rc = main(base + ["--out", str(tmp_path / "a.json")])
        assert rc == 0
        capsys.readouterr()
        rc = main(base + ["--resume", "--out", str(tmp_path / "b.json")])
        assert rc == 0
        doc = json.loads((tmp_path / "b.json").read_text())
        assert doc["supervision"]["checkpoint"]["hits"] == 2


class TestChaosCommand:
    def test_single_campaign_converges(self, capsys):
        rc = main(
            ["chaos", "--seed", "7", "--campaigns", "1", "--jobs", "2",
             "--subset", "wc,cal", "--limit", "200000", "--kills", "1",
             "--raises", "1", "--delays", "1", "--corrupt", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1/1" in out

    def test_json_output(self, capsys):
        rc = main(
            ["chaos", "--campaigns", "1", "--jobs", "2", "--subset", "wc",
             "--limit", "200000", "--kills", "1", "--raises", "0",
             "--delays", "0", "--corrupt", "0"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            ["chaos", "--campaigns", "1", "--jobs", "2", "--subset", "wc",
             "--limit", "200000", "--kills", "1", "--raises", "0",
             "--delays", "0", "--corrupt", "0", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["divergent"] == 0
        assert doc["campaigns"] == 1

    def test_unknown_workload_exits_2(self, capsys):
        rc = main(["chaos", "--subset", "nope", "--campaigns", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
