"""The conformance gate for the predecoded fast core.

Three layers of evidence, strongest first:

* :func:`crosscheck_engines` proves the fast and reference run loops
  produce bit-identical observable state (RunStats, registers, data
  segment, final control state) for real workloads;
* the committed ``tests/golden/`` corpus pins the *reference* behaviour
  itself, so neither engine can drift without a reviewed digest update;
* targeted unit tests cover the digest diffing and failure reporting.
"""

import json
import os

import pytest

from repro.errors import EngineDivergence
from repro.harness import conformance
from repro.harness.conformance import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SCHEMA,
    MACHINES,
    WINDOW,
    check_goldens,
    crosscheck_engines,
    crosscheck_workloads,
    golden_digest,
    golden_path,
)
from repro.workloads import workload, workload_names

#: Small enough to keep tier-1 fast; the full corpus is checked by
#: ``repro golden`` in CI.
GOLDEN_SUBSET = ("wc", "sort", "grep")
CROSSCHECK_SUBSET = ("wc", "sieve")


class TestGoldenCorpus:
    def test_corpus_is_complete(self):
        """Every Appendix I workload has a committed golden record."""
        missing = [
            name for name in workload_names()
            if not os.path.exists(golden_path(DEFAULT_GOLDEN_DIR, name))
        ]
        assert not missing, "unrecorded workloads: %s" % ", ".join(missing)

    def test_corpus_shape(self):
        """Committed records carry the schema, both machines, and full
        trace windows."""
        for name in workload_names():
            with open(golden_path(DEFAULT_GOLDEN_DIR, name)) as handle:
                record = json.load(handle)
            assert record["schema"] == GOLDEN_SCHEMA
            assert record["workload"] == name
            assert set(record["machines"]) == set(MACHINES)
            for machine, digest in record["machines"].items():
                assert digest["machine"] == machine
                assert digest["instructions"] > 0
                assert len(digest["output_sha256"]) == 64
                assert len(digest["data_sha256"]) == 64
                assert digest["stats"]["instructions"] == (
                    digest["instructions"]
                )
                assert 0 < len(digest["trace_first"]) <= WINDOW
                assert 0 < len(digest["trace_last"]) <= WINDOW

    def test_reference_matches_goldens(self):
        """Fresh reference-engine digests reproduce the committed corpus."""
        report = check_goldens(names=GOLDEN_SUBSET)
        assert report["failures"] == []
        assert sorted(report["checked"]) == sorted(GOLDEN_SUBSET)

    def test_missing_golden_reported(self, tmp_path):
        report = check_goldens(golden_dir=str(tmp_path), names=("wc",))
        assert report["checked"] == []
        assert report["failures"] == [
            {"workload": "wc", "reason": "missing", "diffs": []}
        ]

    def test_mismatch_names_the_diverging_keys(self, tmp_path):
        """A tampered digest fails with the dotted paths that changed."""
        fresh = golden_digest(workload("wc"))
        fresh["machines"]["baseline"]["instructions"] += 1
        fresh["machines"]["baseline"]["stats"]["loads"] += 1
        path = golden_path(str(tmp_path), "wc")
        with open(path, "w") as handle:
            json.dump(fresh, handle)
        report = check_goldens(golden_dir=str(tmp_path), names=("wc",))
        (failure,) = report["failures"]
        assert failure["reason"] == "mismatch"
        assert "machines.baseline.instructions" in failure["diffs"]
        assert "machines.baseline.stats.loads" in failure["diffs"]

    def test_update_round_trips(self, tmp_path):
        """--update followed by --check is clean, and the file is stable
        (sorted keys) so re-recording an unchanged workload is a no-op."""
        report = check_goldens(
            golden_dir=str(tmp_path), names=("wc",), update=True
        )
        assert report["updated"] == ["wc"]
        first = open(golden_path(str(tmp_path), "wc")).read()
        assert check_goldens(
            golden_dir=str(tmp_path), names=("wc",)
        )["failures"] == []
        check_goldens(golden_dir=str(tmp_path), names=("wc",), update=True)
        assert open(golden_path(str(tmp_path), "wc")).read() == first

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            check_goldens(names=("no-such-workload",))


class TestCrossEngine:
    def test_workloads_bit_identical(self):
        """The decisive check: fast vs reference on real workloads, all
        observable state compared, and the fast core actually ran."""
        results = crosscheck_workloads(names=CROSSCHECK_SUBSET)
        assert len(results) == len(CROSSCHECK_SUBSET) * len(MACHINES)
        for result in results:
            assert result["engine"] == "fast"
            assert result["fast_fallback"] is None
            assert result["instructions"] > 0

    def test_limit_exceeded_is_compared_too(self):
        """Both engines must agree byte-for-byte even when the run dies
        on the instruction budget: same stamped icount, same pc."""
        source = "int main() { while (1) {} return 0; }"
        for machine in MACHINES:
            result = crosscheck_engines(
                source, machine, limit=1000, name="spin"
            )
            assert result["engine"] == "fast"

    def test_observed_runs_bit_identical(self):
        """With ``sample_every`` set both engines run under a sampling
        observer and the compared state gains the sample/run counts --
        the conformance gate for the fast core's observed loop."""
        source = (
            "int main() { int i; int n = 0;"
            " for (i = 0; i < 100; i++) n += i;"
            " print_int(n); putchar(10); return 0; }"
        )
        for machine in MACHINES:
            result = crosscheck_engines(
                source, machine, name="observed", sample_every=64
            )
            assert result["engine"] == "fast"
            assert result["fast_fallback"] is None

    def test_divergence_raises_with_channels(self, monkeypatch):
        """A cooked fast-side difference surfaces as EngineDivergence
        naming the differing channel."""
        real = conformance._final_state

        def skewed(image, machine, stdin, limit, name, engine, **kwargs):
            state, emu = real(image, machine, stdin, limit, name, engine, **kwargs)
            if engine == "fast":
                state["pc"] += 4
            return state, emu

        monkeypatch.setattr(conformance, "_final_state", skewed)
        source = "int main() { return 0; }"
        with pytest.raises(EngineDivergence) as excinfo:
            crosscheck_engines(source, "baseline", name="skewed")
        assert "pc" in excinfo.value.mismatches

    def test_digest_is_deterministic(self):
        wl = workload("wc")
        assert golden_digest(wl) == golden_digest(wl)
