"""Tests for the machine-independent optimizations."""

from repro.cfg.build import build_cfg
from repro.lang.frontend import compile_to_ir
from repro.opt import constfold, copyprop, dce
from repro.opt.legalize import legalize_immediates
from repro.opt.licm import hoist_loop_invariants
from repro.opt.pipeline import normalize_returns, optimize_function
from repro.machine.spec import baseline_spec, branchreg_spec
from repro.rtl import instr as I
from repro.rtl.operand import Imm, VReg


def fn_of(source, name="main"):
    return compile_to_ir(source).functions[name]


def ops_of(fn):
    return [ins.op for ins in fn.instrs if not ins.is_label()]


class TestConstFold:
    def test_binop_folds(self):
        fn = fn_of("int main() { return 2 * 3 + 4; }")
        optimize_function(fn)
        assert "mul" not in ops_of(fn)
        assert "add" not in ops_of(fn)

    def test_algebraic_identities(self):
        fn = fn_of("int main() { int a = 7; return a * 1 + 0; }")
        optimize_function(fn)
        ops = ops_of(fn)
        assert "mul" not in ops and "add" not in ops

    def test_mul_power_of_two_becomes_shift(self):
        fn = fn_of("int main(){ int a; a = getchar(); return a * 8; }")
        optimize_function(fn)
        ops = ops_of(fn)
        assert "mul" not in ops
        assert "shl" in ops

    def test_mul_zero_becomes_zero(self):
        fn = fn_of("int main(){ int a; a = getchar(); return a * 0; }")
        optimize_function(fn)
        assert "mul" not in ops_of(fn)

    def test_branch_on_constant_resolved(self):
        fn = fn_of("int main() { if (1 < 2) return 5; return 6; }")
        optimize_function(fn)
        assert "br" not in ops_of(fn)

    def test_division_by_zero_not_folded(self):
        # Folding must not raise at compile time; the op survives.
        fn = fn_of("int main() { int z = 0; return 5 / z; }")
        cfg = build_cfg(fn)
        copyprop.run(cfg)
        constfold.run(cfg)
        fn.instrs = cfg.linearize()
        assert "div" in ops_of(fn)


class TestCopyProp:
    def test_copy_chain_collapses(self):
        fn = fn_of("int main() { int a = 1; int b = a; int c = b; return c; }")
        optimize_function(fn)
        assert "mov" not in ops_of(fn)

    def test_defs_never_rewritten(self):
        # Regression: `i = 5; t = i+1; i = t;` -- the second def of i must
        # stay a def of i.
        fn = fn_of("int main() { int i = 5; int t = i + 1; i = t; return i; }")
        cfg = build_cfg(fn)
        copyprop.run(cfg)
        fn.instrs = cfg.linearize()
        # Find all defs; the variable written twice must still have 2 defs.
        from collections import Counter

        defs = Counter()
        for ins in fn.instrs:
            for d in ins.defs():
                defs[d] += 1
        assert max(defs.values()) >= 2

    def test_copy_invalidated_by_redefinition(self):
        src = """
        int main() {
            int a = 1;
            int b = a;
            a = 9;
            return b;   /* must still be 1 */
        }
        """
        fn = fn_of(src)
        optimize_function(fn)
        # Execution-level guarantee is covered by exec tests; here check
        # the optimizer didn't replace b's use with a after the kill.
        ret = fn.instrs[-1]
        assert ret.op == "ret"


class TestDce:
    def test_dead_arithmetic_removed(self):
        fn = fn_of("int main() { int a = 1 + 2; return 7; }")
        optimize_function(fn)
        ops = ops_of(fn)
        assert ops.count("li") == 1  # only the return value

    def test_stores_kept(self):
        fn = fn_of("int g; int main() { g = 5; return 0; }")
        optimize_function(fn)
        assert "sw" in ops_of(fn)

    def test_calls_kept_when_result_dead(self):
        fn = fn_of("int f(){return 1;} int main() { f(); return 0; }")
        optimize_function(fn)
        assert "call" in ops_of(fn)

    def test_traps_kept(self):
        fn = fn_of("int main() { getchar(); return 0; }")
        optimize_function(fn)
        assert "trap" in ops_of(fn)


class TestNormalizeReturns:
    def test_multiple_returns_become_one(self):
        fn = fn_of("int main() { if (1) return 1; return 2; }")
        normalize_returns(fn)
        rets = [i for i in fn.instrs if i.op == "ret"]
        assert len(rets) == 1
        assert fn.instrs[-1].op == "ret"

    def test_single_trailing_return_untouched(self):
        fn = fn_of("int main() { return 3; }")
        before = len(fn.instrs)
        normalize_returns(fn)
        assert len(fn.instrs) == before

    def test_void_function(self):
        fn = fn_of(
            "void f(int x) { if (x) return; putchar(x); } int main() { f(1); return 0; }",
            name="f",
        )
        normalize_returns(fn)
        rets = [i for i in fn.instrs if i.op == "ret"]
        assert len(rets) == 1


class TestLegalize:
    def test_small_immediates_untouched(self):
        fn = fn_of("int main() { int a; a = getchar(); return a + 100; }")
        optimize_function(fn)
        before = ops_of(fn).count("li")
        legalize_immediates(fn, branchreg_spec())
        assert ops_of(fn).count("li") == before

    def test_large_immediate_materialized_for_branchreg(self):
        fn = fn_of("int main() { int a; a = getchar(); return a + 5000; }")
        optimize_function(fn)
        before = ops_of(fn).count("li")
        legalize_immediates(fn, branchreg_spec())
        assert ops_of(fn).count("li") == before + 1

    def test_same_immediate_fits_baseline(self):
        fn = fn_of("int main() { int a; a = getchar(); return a + 4000; }")
        optimize_function(fn)
        before = ops_of(fn).count("li")
        legalize_immediates(fn, baseline_spec())
        assert ops_of(fn).count("li") == before

    def test_branch_immediate_legalized(self):
        fn = fn_of(
            "int main() { int i = 0; while (i < 4000) i++; return i; }"
        )
        optimize_function(fn)
        legalize_immediates(fn, branchreg_spec())
        for ins in fn.instrs:
            if ins.op == "br":
                for src in ins.srcs:
                    if isinstance(src, Imm):
                        assert branchreg_spec().imm_fits(src.value)


class TestLicm:
    def test_constant_hoisted_out_of_loop(self):
        src = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 100; i++)
                n += 5000;
            return n;
        }
        """
        fn = fn_of(src)
        optimize_function(fn)
        legalize_immediates(fn, branchreg_spec())
        moves = hoist_loop_invariants(fn)
        assert moves >= 1
        # After hoisting, the loop body no longer contains the li 5000.
        cfg = build_cfg(fn)
        from repro.cfg.loops import find_loops

        loops = find_loops(cfg)
        for loop in loops:
            for block in loop.blocks:
                for ins in block.instrs:
                    if ins.op == "li" and ins.srcs[0].value == 5000:
                        raise AssertionError("constant still in loop")

    def test_global_address_hoisted(self):
        src = """
        int g;
        int main() {
            int i;
            for (i = 0; i < 10; i++)
                g += i;
            return g;
        }
        """
        fn = fn_of(src)
        optimize_function(fn)
        moves = hoist_loop_invariants(fn)
        assert moves >= 1

    def test_multi_def_register_not_hoisted(self):
        src = """
        int main() {
            int i; int n = 0;
            for (i = 0; i < 10; i++) {
                n = 3;      /* same register redefined each iteration */
                n = n + i;
            }
            return n;
        }
        """
        fn = fn_of(src)
        optimize_function(fn)
        # Whatever is hoisted, semantics must hold -- verified by running:
        from tests.conftest import run_both

        pair = run_both(
            """
            int main() {
                int i; int n = 0;
                for (i = 0; i < 10; i++) { n = 3; n = n + i; }
                print_int(n); putchar(10);
                return 0;
            }
            """
        )
        assert pair.output == b"12\n"

    def test_no_loops_no_moves(self):
        fn = fn_of("int main() { return 12345678; }")
        optimize_function(fn)
        assert hoist_loop_invariants(fn) == 0
