"""Fault-tolerant suite execution, the suite cache, and triage."""

import pytest

from repro.errors import RuntimeLimitExceeded, WatchdogTimeout
from repro.fault.triage import failure_record, render_triage
from repro.harness.runner import (
    SuiteResult,
    _CACHE,
    resolve_workloads,
    run_suite,
)
from repro.obs.manifest import SCHEMA_ID, build_manifest, validate_manifest


class TestFaultTolerantSuite:
    def test_one_failing_workload_does_not_stop_the_rest(self):
        result = run_suite(
            subset=("wc", "grep", "sort"),
            fault_tolerant=True,
            limit_overrides={"grep": 100},
        )
        assert isinstance(result, SuiteResult)
        assert sorted(p.name for p in result) == ["sort", "wc"]
        assert len(result.failures) == 1
        record = result.failures[0]
        assert record["workload"] == "grep"
        assert record["error"] == "RuntimeLimitExceeded"
        assert record["pc"] is not None
        assert record["icount"] == 100
        assert record["edges"], "fault-tolerant runs record the edge ring"

    def test_failure_records_carry_source_attribution(self):
        result = run_suite(
            subset=("wc",), fault_tolerant=True, limit_overrides={"wc": 500}
        )
        record = result.failures[0]
        assert record["function"] not in (None, "")
        for edge in record["edges"]:
            assert set(edge) == {"from", "to", "from_loc", "to_loc"}

    def test_non_fault_tolerant_raises(self):
        with pytest.raises(RuntimeLimitExceeded):
            run_suite(subset=("wc",), limit_overrides={"wc": 100})

    def test_watchdog_deadline(self):
        with pytest.raises(WatchdogTimeout):
            run_suite(subset=("wc",), deadline_s=0.0)

    def test_watchdog_failure_is_tolerated_and_recorded(self):
        result = run_suite(subset=("wc",), fault_tolerant=True, deadline_s=0.0)
        assert len(result) == 0
        assert result.failures[0]["error"] == "WatchdogTimeout"

    def test_limit_exceeded_attaches_machine_state(self):
        with pytest.raises(RuntimeLimitExceeded) as info:
            run_suite(subset=("wc",), limit_overrides={"wc": 100})
        exc = info.value
        assert exc.machine == "baseline"  # baseline runs first
        assert exc.program == "wc"
        assert exc.pc is not None
        assert exc.icount == 100


class TestSuiteCache:
    def test_same_key_returns_equal_copies(self):
        first = run_suite(subset=("wc",))
        second = run_suite(subset=("wc",))
        assert first is not second, "cache hits must not share a list"
        assert list(first) == list(second)
        assert first.failures == second.failures

    def test_hits_misses_and_bypasses_counted(self):
        from repro.obs.metrics import METRICS

        def counts():
            return {
                result: METRICS.counter(
                    "harness.suite_cache", result=result
                ).value
                for result in ("hit", "miss", "bypass")
            }

        before = counts()
        run_suite(subset=("sieve",))  # cold: miss, fills the cache
        run_suite(subset=("sieve",))  # warm: hit
        run_suite(subset=("sieve",), use_cache=False)  # forced around
        after = counts()
        assert after["miss"] - before["miss"] == 1
        assert after["hit"] - before["hit"] == 1
        assert after["bypass"] - before["bypass"] == 1

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        # regression: run_suite used to hand out the cached SuiteResult
        # by reference, so one caller's .clear() / .append() silently
        # corrupted every later caller's "fresh" result
        first = run_suite(subset=("wc",))
        assert len(first) == 1
        first.clear()
        first.failures.append({"workload": "bogus"})
        refetched = run_suite(subset=("wc",))
        assert len(refetched) == 1
        assert refetched[0].name == "wc"
        assert refetched.failures == []

    def test_observer_bypasses_cache(self):
        # regression: the cache key omits the observer, so an observed
        # run must never return (or populate) a cached plain result
        from repro.obs.emuobs import EmulationObserver

        plain = run_suite(subset=("wc",))
        observer = EmulationObserver(sample_every=1024)
        observed = run_suite(subset=("wc",), observer=observer)
        assert observed is not plain
        assert observer.runs > 0, "observer never saw the run"
        # and the observed run did not overwrite the cached entry
        refetched = run_suite(subset=("wc",))
        assert list(refetched) == list(plain)

    def test_fault_tolerant_runs_are_never_cached(self):
        faulty = run_suite(
            subset=("wc",), fault_tolerant=True, limit_overrides={"wc": 100}
        )
        clean = run_suite(subset=("wc",))
        assert clean is not faulty
        assert len(clean) == 1
        key_entries = [
            value for value in _CACHE.values() if value is faulty
        ]
        assert not key_entries, "a fault-cut run leaked into the cache"

    def test_limit_overrides_bypass_cache(self):
        clean = run_suite(subset=("wc",))
        assert run_suite(
            subset=("wc",), fault_tolerant=True, limit_overrides={"wc": 10**9}
        ) is not clean


class TestResolveWorkloads:
    def test_duplicate_names_rejected(self):
        # regression: duplicates used to be silently collapsed via a
        # set, so ("wc", "wc") and ("wc",) aliased the same run under
        # two different memo-cache keys
        with pytest.raises(ValueError, match="duplicate workload"):
            resolve_workloads(("wc", "wc", "grep", "wc"))

    def test_duplicate_error_names_each_duplicate_once(self):
        with pytest.raises(
            ValueError,
            match=r"duplicate workload\(s\): wc, grep \(see 'repro workloads'\)",
        ):
            resolve_workloads(("wc", "grep", "wc", "grep", "wc"))

    def test_registry_order_is_preserved(self):
        all_names = [w.name for w in resolve_workloads(None)]
        subset = resolve_workloads(tuple(reversed(all_names[:4])))
        assert [w.name for w in subset] == all_names[:4]

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workloads(("wc", "bogus"))


class TestManifestFailures:
    def _manifest(self, result):
        return build_manifest(
            result,
            config={"subset": ("wc",), "limit": None},
            duration_s=0.01,
            failures=result.failures,
        )

    def test_failures_section_validates(self):
        result = run_suite(
            subset=("wc", "grep"), fault_tolerant=True,
            limit_overrides={"grep": 200},
        )
        manifest = self._manifest(result)
        assert manifest["schema"] == SCHEMA_ID
        assert len(manifest["failures"]) == 1
        validate_manifest(manifest)  # must not raise

    def test_empty_failures_section_is_recorded(self):
        result = run_suite(subset=("wc",), fault_tolerant=True)
        manifest = self._manifest(result)
        assert manifest["failures"] == []

    def test_triage_renders_post_mortem(self):
        result = run_suite(
            subset=("wc", "grep"), fault_tolerant=True,
            limit_overrides={"grep": 200},
        )
        text = render_triage(self._manifest(result))
        assert "grep: RuntimeLimitExceeded" in text
        assert "control-flow edges" in text
        assert "pc=0x" in text

    def test_triage_with_no_failures(self):
        result = run_suite(subset=("wc",), fault_tolerant=True)
        text = render_triage(self._manifest(result))
        assert "nothing to triage" in text


class TestFailureRecord:
    def test_record_from_unstamped_error(self):
        from repro.errors import ImageCorruption

        record = failure_record("x", ImageCorruption("broken"))
        assert record["workload"] == "x"
        assert record["error"] == "ImageCorruption"
        assert record["machine"] is None
        assert record["edges"] is None

    def test_record_is_json_safe(self):
        import json

        result = run_suite(
            subset=("wc",), fault_tolerant=True, limit_overrides={"wc": 100}
        )
        json.dumps(result.failures)  # must not raise


class TestReportIntegration:
    def test_fault_tolerant_report_embeds_failures(self):
        from repro.obs.report import render_report, run_report

        result = run_report(subset=("wc",), fault_tolerant=True)
        manifest = result["manifest"]
        assert manifest["failures"] == []
        assert "Failures: 0" in render_report(manifest)

    def test_plain_report_has_no_failures_section(self):
        from repro.obs.report import render_report, run_report

        result = run_report(subset=("wc",))
        assert "failures" not in result["manifest"]
        assert "Failures:" not in render_report(result["manifest"])
