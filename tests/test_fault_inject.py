"""Fault-injection campaigns: every catalogued fault is detected or
masked -- never an escaped raw exception or silent hang."""

import pytest

from repro.cache.icache import PrefetchICache
from repro.fault.inject import (
    IMAGE_INJECTORS,
    INJECTORS,
    RUNTIME_INJECTORS,
    run_campaign,
    run_trial,
)

SOURCE = """
int g;
int main() {
    int i; int s; s = 0;
    for (i = 0; i < 20; i = i + 1) { s = s + i; }
    g = s;
    print_int(s); putchar(10);
    return 0;
}
"""

RECURSIVE = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(12)); putchar(10); return 0; }
"""


class TestCatalogue:
    def test_catalogue_is_complete(self):
        assert set(INJECTORS) == set(IMAGE_INJECTORS) | set(RUNTIME_INJECTORS)
        assert set(IMAGE_INJECTORS) == {"bitflip", "truncate", "clobber_reloc"}
        assert set(RUNTIME_INJECTORS) == {
            "stuck_branch_reg", "stale_branch_reg",
            "dropped_prefetch", "misaligned_access",
        }

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError, match="unknown injector"):
            run_trial(SOURCE, "rowhammer")

    def test_branchreg_only_injectors_rejected_on_baseline(self):
        with pytest.raises(ValueError, match="branch-register"):
            run_trial(SOURCE, "stuck_branch_reg", machine="baseline")

    def test_dropped_prefetch_requires_cache(self):
        with pytest.raises(ValueError, match="instruction cache"):
            run_trial(SOURCE, "dropped_prefetch", seed=1)


@pytest.mark.parametrize("machine", ["baseline", "branchreg"])
class TestCampaign:
    def test_no_fault_escapes(self, machine):
        outcomes = run_campaign(
            SOURCE, machine=machine, trials_per_injector=4, seed=11,
            deadline_s=10.0, icache_factory=PrefetchICache,
        )
        assert outcomes, "campaign ran no trials"
        escaped = [o for o in outcomes if o.outcome == "escaped"]
        assert not escaped, escaped

    def test_detected_faults_carry_typed_error(self, machine):
        outcomes = run_campaign(
            SOURCE, machine=machine, trials_per_injector=4, seed=11,
            deadline_s=10.0, icache_factory=PrefetchICache,
        )
        detected = [o for o in outcomes if o.outcome == "detected"]
        assert detected, "expected at least one detected fault"
        for o in detected:
            assert o.error, o
            assert o.detected_by in ("load", "runtime", "oracle"), o
            assert o.post_mortem is not None, o

    def test_campaign_is_deterministic(self, machine):
        kwargs = dict(
            machine=machine, trials_per_injector=2, seed=5, deadline_s=10.0
        )
        first = [o.to_dict() for o in run_campaign(SOURCE, **kwargs)]
        second = [o.to_dict() for o in run_campaign(SOURCE, **kwargs)]
        assert first == second


class TestSpecificInjectors:
    def test_clobber_reloc_caught_at_load(self):
        out = run_trial(SOURCE, "clobber_reloc", seed=0)
        assert out.outcome == "detected"
        assert out.error == "ImageCorruption"
        assert out.detected_by == "load"

    def test_truncate_detected(self):
        out = run_trial(SOURCE, "truncate", seed=0)
        assert out.outcome == "detected"
        assert out.error in ("ImageCorruption", "ControlFlowViolation")

    def test_misaligned_access_detected_with_post_mortem(self):
        out = run_trial(RECURSIVE, "misaligned_access", seed=0)
        assert out.outcome == "detected"
        assert out.error == "MemoryFault"
        assert out.detected_by == "runtime"
        assert out.post_mortem["pc"] is not None
        assert out.post_mortem["icount"] is not None
        assert out.post_mortem["edges"]

    def test_stuck_branch_reg_on_link_is_wild_jump(self):
        # seeds are cheap: find one that sticks a register the program
        # actually transfers through, then assert the typed detection
        for seed in range(16):
            out = run_trial(RECURSIVE, "stuck_branch_reg", seed=seed)
            assert out.outcome in ("detected", "masked")
            if out.outcome == "detected":
                assert out.error in (
                    "ControlFlowViolation", "RuntimeLimitExceeded",
                    "WatchdogTimeout", "MachineDivergence",
                    "IllegalInstruction",
                )
                return
        raise AssertionError("no seed in 0..15 produced a detection")

    def test_stale_branch_reg_detected_somewhere(self):
        for seed in range(16):
            out = run_trial(RECURSIVE, "stale_branch_reg", seed=seed)
            assert out.outcome in ("detected", "masked")
            if out.outcome == "detected":
                return
        raise AssertionError("no seed in 0..15 produced a detection")

    def test_dropped_prefetch_is_masked_but_counted(self):
        cache_box = []

        def factory():
            cache_box.append(PrefetchICache())
            return cache_box[-1]

        out = run_trial(SOURCE, "dropped_prefetch", seed=2,
                        icache_factory=factory)
        assert out.outcome == "masked"
        assert cache_box[-1].stats.prefetch_drops > 0

    def test_bitflip_sites_are_described(self):
        for seed in range(8):
            out = run_trial(SOURCE, "bitflip", seed=seed)
            assert out.outcome in ("detected", "masked")
            assert "word at 0x" in out.site
