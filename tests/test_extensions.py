"""Tests for the Section 9 future-work extensions we implemented:
function alignment in the loader and the fast-compare pipeline variant."""

import pytest

from repro.codegen.baseline_gen import generate_baseline
from repro.codegen.branchreg_gen import generate_branchreg
from repro.emu.baseline_emu import run_baseline
from repro.emu.branchreg_emu import run_branchreg
from repro.emu.loader import Image
from repro.emu.memory import TEXT_BASE
from repro.harness.cycles7 import run_cycle_estimate
from repro.lang.frontend import compile_to_ir
from repro.pipeline.model import branchreg_fastcmp_cycles, branchreg_cycles

SRC = """
int helper(int x) { return x * 3; }
int main() {
    int i; int n = 0;
    for (i = 0; i < 6; i++) n += helper(i);
    print_int(n); putchar(10);
    return 0;
}
"""


class TestFunctionAlignment:
    def test_functions_aligned_to_line(self):
        image = Image(generate_baseline(compile_to_ir(SRC)), align_functions=4)
        for name, addr in image.labels.items():
            if name in ("main", "helper", "__start", "print_int"):
                assert (addr - TEXT_BASE) % 16 == 0, name

    def test_alignment_preserves_semantics_baseline(self):
        plain = Image(generate_baseline(compile_to_ir(SRC)))
        aligned = Image(generate_baseline(compile_to_ir(SRC)), align_functions=8)
        s1 = run_baseline(plain)
        s2 = run_baseline(aligned)
        assert s1.output == s2.output
        assert s1.instructions == s2.instructions  # pads never execute

    def test_alignment_preserves_semantics_branchreg(self):
        plain = Image(generate_branchreg(compile_to_ir(SRC)))
        aligned = Image(generate_branchreg(compile_to_ir(SRC)), align_functions=8)
        s1 = run_branchreg(plain)
        s2 = run_branchreg(aligned)
        assert s1.output == s2.output
        assert s1.instructions == s2.instructions

    def test_default_alignment_is_none(self):
        image = Image(generate_baseline(compile_to_ir(SRC)))
        assert image.align_functions == 1

    def test_pad_instructions_are_noops(self):
        image = Image(generate_baseline(compile_to_ir(SRC)), align_functions=4)
        pads = [i for i in image.instrs if getattr(i, "note", "") == "align pad"]
        assert pads
        assert all(p.is_noop() for p in pads)


class TestFastCompareModel:
    @pytest.fixture(scope="class")
    def estimates(self):
        return run_cycle_estimate(stages_list=(3, 4, 5), subset=("wc", "sieve"))

    def test_fastcmp_equals_standard_at_three_stages(self, estimates):
        est3 = estimates["estimates"][0]
        # At N=3 the compare term is zero anyway.
        assert est3["branchreg_fastcmp"].cycles == est3["branchreg"].cycles

    def test_fastcmp_beats_standard_at_four_stages(self, estimates):
        est4 = estimates["estimates"][1]
        assert est4["branchreg_fastcmp"].cycles < est4["branchreg"].cycles

    def test_fastcmp_relative_savings_grow_with_depth(self, estimates):
        savings = [
            est["fastcmp_saving_vs_baseline"] for est in estimates["estimates"]
        ]
        assert savings[0] < savings[1] < savings[2]

    def test_fastcmp_never_worse_than_standard(self, estimates):
        for est in estimates["estimates"]:
            assert (
                est["branchreg_fastcmp"].transfer_delays
                <= est["branchreg"].transfer_delays
            )

    def test_models_agree_on_instruction_component(self, estimates):
        for est in estimates["estimates"]:
            assert (
                est["branchreg_fastcmp"].instructions
                == est["branchreg"].instructions
            )
