"""Smoke and shape tests for the experiment harnesses (fast subsets).

The benchmarks/ directory regenerates the full tables; these tests verify
the *shape* claims on a fast subset so `pytest tests/` stays quick-ish.
"""

import pytest

from repro.harness.ablation import (
    ablation_text,
    sweep_branch_registers,
    sweep_optimizations,
)
from repro.harness.cache9 import run_cache_study
from repro.harness.cycles7 import run_cycle_estimate
from repro.harness.figures import (
    fig5_unconditional_delays,
    fig7_conditional_delays,
    fig9_prefetch_distance,
    strlen_example,
)
from repro.harness.table1 import run_table1

SUBSET = ("wc", "grep", "sieve")


@pytest.fixture(scope="module")
def table1():
    return run_table1(subset=SUBSET)


class TestTable1:
    def test_branchreg_executes_fewer_instructions(self, table1):
        assert table1["instr_change"] < 0

    def test_data_refs_increase_modestly(self, table1):
        assert 0 <= table1["refs_change"] < 0.25

    def test_saved_to_added_ratio_large(self, table1):
        assert table1["saved_to_added_ratio"] > 2

    def test_transfer_fraction_in_paper_band(self, table1):
        # Paper: ~14% of instructions are transfers of control.
        assert 0.08 < table1["transfer_fraction"] < 0.25

    def test_transfers_exceed_calcs(self, table1):
        # Paper reports > 2:1 on its loop-dominated suite; our scaled
        # suite is more recursion-heavy (recursive functions offer no
        # loop to hoist into), measuring ~1.9:1 overall.
        assert table1["transfers_per_calc"] > 1.5

    def test_noops_reduced(self, table1):
        assert table1["branchreg_noops"] < table1["baseline_noops"]

    def test_text_renders(self, table1):
        assert "Table I" in table1["text"]
        assert "wc" in table1["text"]


class TestCycles:
    @pytest.fixture(scope="class")
    def cycles(self):
        return run_cycle_estimate(stages_list=(3, 4), subset=SUBSET)

    def test_branchreg_saves_cycles_at_n3(self, cycles):
        est3 = cycles["estimates"][0]
        assert est3["saving_vs_baseline"] > 0.05

    def test_absolute_advantage_grows_with_pipeline_depth(self, cycles):
        # Paper: "There would be greater savings for machines having
        # pipelines with more stages."  The absolute cycle advantage
        # grows with depth (the relative percentage depends on the
        # conditional-transfer mix; see EXPERIMENTS.md).
        est3, est4 = cycles["estimates"]
        adv3 = est3["baseline"].cycles - est3["branchreg"].cycles
        adv4 = est4["baseline"].cycles - est4["branchreg"].cycles
        assert adv4 > adv3

    def test_delayed_fraction_small(self, cycles):
        # Paper estimates 13.86% of transfers delayed at 3 stages.
        est3 = cycles["estimates"][0]
        assert est3["delayed_fraction"] < 0.40

    def test_ordering_no_delay_worst(self, cycles):
        est3 = cycles["estimates"][0]
        assert (
            est3["no_delay"].cycles
            > est3["baseline"].cycles
            > est3["branchreg"].cycles
        )


class TestFigures:
    def test_strlen_counts_match_paper_shape(self):
        result = strlen_example()
        # Paper: 11 vs 14 total, 5 vs 6 in the loop.
        assert result["branchreg_total"] < result["baseline_total"]
        assert result["branchreg_loop"] < result["baseline_loop"]
        assert result["branchreg_loop"] == 5
        assert result["baseline_loop"] == 6

    def test_strlen_listings_in_paper_notation(self):
        result = strlen_example()
        assert "b[0]+(" in result["branchreg_listing"]
        assert "PC=cc" in result["baseline_listing"]
        assert "->b[" in result["branchreg_listing"]

    def test_fig5_delay_ladder(self):
        delays = {m: d["delay"] for m, d in fig5_unconditional_delays(3).items()}
        assert delays == {"no-delay": 2, "delayed": 1, "branchreg": 0}

    def test_fig7_delay_ladder(self):
        delays = {m: d["delay"] for m, d in fig7_conditional_delays(4).items()}
        assert delays == {"no-delay": 3, "delayed": 2, "branchreg": 1}

    def test_fig9_min_safe_distance(self):
        assert fig9_prefetch_distance(stages=3)["min_safe_distance"] == 2


class TestCacheStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_cache_study(subset=("wc",), configs=((64, 4, 2), (128, 4, 2)))

    def test_prefetch_beats_no_prefetch(self, study):
        by_key = {(r.config, r.machine): r for r in study["runs"]}
        for config in ("64w/4w-line/2-way", "128w/4w-line/2-way"):
            with_pf = by_key[(config, "branchreg")]
            without = by_key[(config, "branchreg-nopf")]
            assert with_pf.stalls <= without.stalls

    def test_bigger_cache_fewer_stalls(self, study):
        by_key = {(r.config, r.machine): r for r in study["runs"]}
        small = by_key[("64w/4w-line/2-way", "baseline")]
        big = by_key[("128w/4w-line/2-way", "baseline")]
        assert big.stalls <= small.stalls

    def test_text_renders(self, study):
        assert "missrate" in study["text"]


class TestAblation:
    def test_more_branch_registers_help(self):
        rows = sweep_branch_registers(counts=(4, 8), subset=("wc", "sieve"))
        assert rows[1]["instr_change"] < rows[0]["instr_change"]

    def test_disabling_everything_erases_the_win(self):
        rows = {r["config"]: r for r in sweep_optimizations(subset=("wc", "sieve"))}
        assert rows["none"]["instr_change"] > rows["full"]["instr_change"]
        # Hoisting is the dominant mechanism (Section 5).
        assert rows["no-hoisting"]["instr_change"] > rows["full"]["instr_change"]

    def test_ablation_text(self):
        text = ablation_text(
            sweep_branch_registers(counts=(8,), subset=("wc",)),
            sweep_optimizations(subset=("wc",)),
        )
        assert "b-regs" in text
