"""The Appendix I suite: every program runs on both machines, outputs
agree, and spot-checked outputs match independently computed values."""

import pytest

from repro.ease.environment import run_pair
from repro.workloads import all_workloads, workload, workload_names
from repro.workloads.inputs import byte_blob, text_lines

_LIMIT = 5_000_000

_RESULTS = {}


def pair_for(name):
    if name not in _RESULTS:
        w = workload(name)
        _RESULTS[name] = run_pair(
            w.source, stdin=w.stdin_bytes(), name=name, limit=_LIMIT
        )
    return _RESULTS[name]


class TestRegistry:
    def test_nineteen_programs(self):
        assert len(all_workloads()) == 19

    def test_names_match_appendix_i(self):
        expected = {
            "cal", "cb", "compact", "diff", "grep", "nroff", "od", "sed",
            "sort", "spline", "tr", "wc", "dhrystone", "matmult", "puzzle",
            "sieve", "whetstone", "mincost", "vpcc",
        }
        assert set(workload_names()) == expected

    def test_classes(self):
        classes = {w.name: w.cls for w in all_workloads()}
        assert classes["wc"] == "utility"
        assert classes["dhrystone"] == "benchmark"
        assert classes["vpcc"] == "user"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("doom")


@pytest.mark.parametrize("name", workload_names())
class TestSuiteRuns:
    def test_outputs_agree_and_nonempty(self, name):
        pair = pair_for(name)
        assert pair.baseline.output == pair.branchreg.output
        assert pair.output, "%s produced no output" % name

    def test_clean_exit(self, name):
        pair = pair_for(name)
        assert pair.baseline.exit_code == 0
        assert pair.branchreg.exit_code == 0

    def test_nontrivial_instruction_count(self, name):
        pair = pair_for(name)
        assert pair.baseline.instructions > 3000, (
            "%s too small to be a meaningful measurement" % name
        )


class TestIndependentlyComputedOutputs:
    """Outputs checked against pure-Python recomputations, guarding
    against a compiler bug that affects both machines identically."""

    def test_wc_counts(self):
        text = text_lines(150, seed=11)
        lines = text.count("\n")
        words = len(text.split())
        chars = len(text)
        assert pair_for("wc").output.decode() == "%d %d %d\n" % (lines, words, chars)

    def test_tr_translation(self):
        text = text_lines(140, words_per_line=6, seed=101)
        expected = text.upper().replace(" ", "_")
        assert pair_for("tr").output.decode() == expected

    def test_sort_is_sorted_permutation(self):
        text = text_lines(90, words_per_line=4, seed=91)
        original = [line[:47] for line in text.strip("\n").split("\n")[:96]]
        out_lines = pair_for("sort").output.decode().strip("\n").split("\n")
        assert sorted(original) == out_lines

    def test_sieve_prime_count(self):
        flags = [True] * 4000
        count = 0
        last = 0
        for i in range(2, 4000):
            if flags[i]:
                count += 1
                last = i
                for k in range(i + i, 4000, i):
                    flags[k] = False
        assert pair_for("sieve").output.decode() == "primes %d last %d\n" % (
            count, last,
        )

    def test_matmult_trace_and_total(self):
        n = 14
        a = [[i + j for j in range(n)] for i in range(n)]
        b = [[i - j for j in range(n)] for i in range(n)]
        c = [
            [sum(a[i][k] * b[k][j] for k in range(n)) for j in range(n)]
            for i in range(n)
        ]
        trace = sum(c[i][i] for i in range(n))
        total = sum(sum(row) for row in c)
        assert pair_for("matmult").output.decode() == (
            "trace %d total %d\n" % (trace, total)
        )

    def test_od_reports_length(self):
        blob = byte_blob(500, seed=71)
        out = pair_for("od").output.decode()
        final_offset = out.strip().split("\n")[-1]
        assert int(final_offset, 8) == len(blob)

    def test_grep_matches_regex(self):
        import re

        text = text_lines(120, words_per_line=5, seed=51)
        expected = []
        for lineno, line in enumerate(text.strip("\n").split("\n"), 1):
            if re.search("br.nch", line[:79]):
                expected.append("%d:%s" % (lineno, line[:79]))
        out = pair_for("grep").output.decode().strip("\n").split("\n")
        hits = [l for l in out if ":" in l and not l.startswith("matches")]
        assert hits == expected
        assert out[-1] == "matches %d" % len(expected)

    def test_cb_preserves_nonblank_content(self):
        out = pair_for("cb").output.decode()
        w = workload("cb")
        original = w.stdin_bytes().decode()
        strip = lambda text: "".join(text.split())
        assert strip(out) == strip(original)

    def test_sed_substitution(self):
        text = text_lines(100, words_per_line=6, seed=81)
        expected = "".join(
            line.replace("branch", "transfer") + "\n"
            for line in text.strip("\n").split("\n")
        )
        assert pair_for("sed").output.decode() == expected

    def test_vpcc_checksum(self):
        # Interpret the same little language in Python.
        w = workload("vpcc")
        text = w.stdin_bytes().decode()
        variables = {chr(ord("a") + i): 0 for i in range(26)}

        def trunc_div(a, b):
            if b == 0:
                return 0
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q

        def trunc_mod(a, b):
            if b == 0:
                return 0
            r = abs(a) % abs(b)
            return -r if a < 0 else r

        import re

        for line in text.strip().split("\n"):
            m = re.match(r"(\w) = \((\w) (.) (\d+)\) (.) (\d+);", line)
            target, a, op1, b, op2, c = m.groups()
            b, c = int(b), int(c)
            v = variables[a]
            inner = {
                "+": v + b, "-": v - b, "*": v * b,
                "/": trunc_div(v, b), "%": trunc_mod(v, b),
            }[op1]
            outer = {"+": inner + c, "-": inner - c, "*": inner * c}[op2]
            variables[target] = outer
        checksum = sum(
            variables[chr(ord("a") + i)] * (i + 1) for i in range(26)
        )
        out = pair_for("vpcc").output.decode()
        assert ("checksum %d " % checksum) in out

    def test_diff_recovers_edit(self):
        out = pair_for("diff").output.decode()
        assert "> a changed line of text" in out
        assert "> an inserted line appears" in out
        assert "lcs " in out

    def test_spline_interpolates_knots(self):
        # The spline passes through its knots; the midpoint value printed
        # is sin-based and must be small in magnitude.
        out = pair_for("spline").output.decode()
        assert out.startswith("area ")
        assert "mid " in out
