"""Tests for the machine specifications (Section 7 parameters)."""

import pytest

from repro.machine.spec import baseline_spec, branchreg_spec
from repro.rtl.operand import Reg


class TestBaselineSpec:
    def setup_method(self):
        self.spec = baseline_spec()

    def test_register_counts(self):
        assert self.spec.ints.count == 32
        assert self.spec.flts.count == 32
        assert self.spec.branch_regs == 0

    def test_delayed_branch(self):
        assert self.spec.has_delayed_branch

    def test_sp_is_r31(self):
        assert self.spec.sp() == Reg("r", 31)

    def test_immediate_range_13_bits(self):
        assert self.spec.imm_fits(4095)
        assert self.spec.imm_fits(-4096)
        assert not self.spec.imm_fits(4096)

    def test_displacement_range(self):
        assert self.spec.disp_fits(2**21 - 1)
        assert not self.spec.disp_fits(2**21)

    def test_roles_disjoint(self):
        conv = self.spec.ints
        roles = [conv.ret] + list(conv.args) + list(conv.caller_saved) + list(
            conv.callee_saved
        ) + [conv.sp]
        assert len(roles) == len(set(roles))
        assert sorted(roles) == list(range(32))


class TestBranchRegSpec:
    def setup_method(self):
        self.spec = branchreg_spec()

    def test_register_counts(self):
        assert self.spec.ints.count == 16
        assert self.spec.flts.count == 16
        assert self.spec.branch_regs == 8

    def test_no_delayed_branch(self):
        assert not self.spec.has_delayed_branch

    def test_narrower_immediates_than_baseline(self):
        # Section 7: "smaller range of available constants".
        assert self.spec.imm_bits < baseline_spec().imm_bits
        assert self.spec.imm_fits(511)
        assert not self.spec.imm_fits(512)

    def test_branch_register_roles(self):
        assert self.spec.br_pc == 0
        assert self.spec.br_link == 7
        assert set(self.spec.br_callee_saved) == {1, 2, 3}
        assert set(self.spec.br_scratch) == {4, 5, 6}

    def test_roles_partition_registers(self):
        regs = (
            {self.spec.br_pc, self.spec.br_link}
            | set(self.spec.br_callee_saved)
            | set(self.spec.br_scratch)
        )
        assert regs == set(range(8))

    def test_int_roles_disjoint(self):
        conv = self.spec.ints
        roles = [conv.ret] + list(conv.args) + list(conv.caller_saved) + list(
            conv.callee_saved
        ) + [conv.sp]
        assert sorted(roles) == list(range(16))


class TestAblationSpecs:
    @pytest.mark.parametrize("count", [3, 4, 6, 12, 16])
    def test_partition_holds_for_any_count(self, count):
        spec = branchreg_spec(count)
        regs = (
            {spec.br_pc, spec.br_link}
            | set(spec.br_callee_saved)
            | set(spec.br_scratch)
        )
        assert regs == set(range(count))
        assert spec.br_link == count - 1

    def test_too_few_registers_rejected(self):
        with pytest.raises(ValueError):
            branchreg_spec(2)

    def test_arg_and_ret_helpers(self):
        spec = branchreg_spec()
        assert spec.ret_reg() == Reg("r", 0)
        assert spec.ret_reg(float_=True) == Reg("f", 0)
        assert spec.arg_reg(0) == Reg("r", 1)
        assert spec.arg_reg(2, float_=True) == Reg("f", 3)
        assert spec.max_args() == 4
