"""Tests for workload input generators and error paths."""

import pytest

from repro import errors
from repro.errors import EmulationError, MemoryFault
from repro.ease.environment import run_on_machine
from repro.workloads.inputs import (
    Lcg,
    byte_blob,
    c_source_sample,
    int_lines,
    text_lines,
    words,
)


class TestInputGenerators:
    def test_lcg_deterministic(self):
        a = [Lcg(7).next() for _ in range(5)]
        b = [Lcg(7).next() for _ in range(5)]
        assert a == b

    def test_lcg_below_bound(self):
        rng = Lcg(1)
        assert all(0 <= rng.below(10) < 10 for _ in range(100))

    def test_words_count_and_determinism(self):
        text = words(25, seed=3)
        assert len(text.split()) == 25
        assert text == words(25, seed=3)
        assert text != words(25, seed=4)

    def test_text_lines_shape(self):
        text = text_lines(10, seed=9)
        assert text.endswith("\n")
        assert len(text.strip("\n").split("\n")) == 10

    def test_int_lines_parse(self):
        for token in int_lines(20, seed=1).split():
            int(token)

    def test_byte_blob_length_and_printability(self):
        blob = byte_blob(333, seed=2)
        assert len(blob) == 333
        assert all(32 <= b < 96 for b in blob)

    def test_c_source_sample_balanced_braces(self):
        sample = c_source_sample(40, seed=6)
        assert sample.count("{") == sample.count("}")


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in (
            "LexError", "ParseError", "SemanticError", "CodegenError",
            "EncodingError", "EmulationError", "MemoryFault",
            "RuntimeLimitExceeded", "ImageCorruption",
            "ControlFlowViolation", "IllegalInstruction",
            "WatchdogTimeout", "MachineDivergence",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_runtime_faults_are_emulation_errors(self):
        for name in (
            "MemoryFault", "ControlFlowViolation", "IllegalInstruction",
            "RuntimeLimitExceeded", "WatchdogTimeout", "MachineDivergence",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.EmulationError)

    def test_memory_fault_formats_address(self):
        fault = MemoryFault("bad access", address=0x1234)
        assert "0x1234" in str(fault)

    def test_memory_fault_formats_negative_address(self):
        fault = MemoryFault("bad access", address=-4)
        assert "-0x4" in str(fault)
        assert "0x-" not in str(fault)

    def test_format_address_helper(self):
        assert errors.format_address(0x10) == "0x10"
        assert errors.format_address(0) == "0x0"
        assert errors.format_address(-0x10) == "-0x10"

    def test_emulation_errors_default_post_mortem_fields(self):
        err = errors.EmulationError("plain")
        assert err.machine is None
        assert err.pc is None
        assert err.icount is None
        assert err.edges is None

    def test_machine_divergence_carries_mismatches(self):
        err = errors.MachineDivergence(
            "diverged", mismatches=["output"], detail={"address": 4}
        )
        assert err.mismatches == ["output"]
        assert err.detail == {"address": 4}

    def test_lex_error_position(self):
        err = errors.LexError("bad char", line=3, col=7)
        assert "line 3" in str(err)


class TestRuntimeFaults:
    @pytest.mark.parametrize("machine", ["baseline", "branchreg"])
    def test_wild_pointer_faults(self, machine):
        src = """
        int main() {
            int *p = (int *) 123456789;
            return *p;
        }
        """
        with pytest.raises(MemoryFault):
            run_on_machine(src, machine)

    @pytest.mark.parametrize("machine", ["baseline", "branchreg"])
    def test_division_by_zero_faults(self, machine):
        src = """
        int main() {
            int z = 0;
            int w;
            w = getchar();     /* defeat constant folding */
            return w / z;
        }
        """
        with pytest.raises((ZeroDivisionError, EmulationError)):
            run_on_machine(src, machine)

    @pytest.mark.parametrize("machine", ["baseline", "branchreg"])
    def test_stack_overflow_faults(self, machine):
        src = """
        int recurse(int n) { int pad[64]; pad[0] = n; return recurse(n + pad[0]); }
        int main() { return recurse(1); }
        """
        with pytest.raises((MemoryFault, errors.RuntimeLimitExceeded)):
            run_on_machine(src, machine, limit=10_000_000)
