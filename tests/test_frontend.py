"""Tests for the compilation driver (stdlib merge, trimming, checks)."""

import pytest

from repro.errors import SemanticError
from repro.lang.frontend import STDLIB_SOURCE, compile_to_ir
from repro.lang.parser import parse


class TestStdlibMerge:
    def test_stdlib_parses_standalone(self):
        prog = parse(STDLIB_SOURCE)
        names = {fn.name for fn in prog.functions}
        assert {"strlen", "strcmp", "strcpy", "print_int", "f_sqrt"} <= names

    def test_user_definition_wins(self):
        # A program may redefine a library function.
        src = """
        int strlen(char *s) { return 42; }
        int main() { return strlen("x"); }
        """
        prog = compile_to_ir(src)
        assert "strlen" in prog.functions
        # The user body returns the constant 42.
        ops = [i.op for i in prog.functions["strlen"].instrs]
        assert "lb" not in ops  # no character loop

    def test_stdlib_can_be_excluded(self):
        with pytest.raises(SemanticError):
            compile_to_ir(
                "int main() { return strlen(\"x\"); }", include_stdlib=False
            )

    def test_builtins_survive_without_stdlib(self):
        prog = compile_to_ir(
            "int main() { putchar(65); return 0; }", include_stdlib=False
        )
        assert "main" in prog.functions


class TestTrimming:
    def test_unreachable_user_function_trimmed(self):
        prog = compile_to_ir(
            "int unused() { return 9; } int main() { return 0; }"
        )
        assert "unused" not in prog.functions

    def test_reachability_is_transitive(self):
        src = """
        int c() { return 3; }
        int b() { return c(); }
        int a() { return b(); }
        int main() { return a(); }
        """
        prog = compile_to_ir(src)
        assert set(prog.functions) == {"main", "a", "b", "c"}

    def test_unreferenced_globals_trimmed(self):
        prog = compile_to_ir("int unused_g; int main() { return 0; }")
        assert "unused_g" not in prog.globals

    def test_string_behind_pointer_global_kept(self):
        prog = compile_to_ir(
            'char *msg = "keep me"; int main() { return msg != 0; }'
        )
        strings = [n for n in prog.globals if n.startswith("__str")]
        assert strings

    def test_float_pool_trimmed_with_function(self):
        # f_sin's constants must not leak into a program that never uses it.
        prog = compile_to_ir("int main() { return 0; }")
        assert not [n for n in prog.globals if n.startswith("__flt")]


class TestChecks:
    def test_main_with_parameters_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int main(int argc) { return argc; }")

    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError):
            compile_to_ir("int helper() { return 1; }")


class TestStdlibBehaviour:
    """The SmallC library functions themselves, exercised end to end."""

    def test_f_sin_accuracy(self, both):
        src = """
        int main() {
            /* sin(pi/2) == 1 */
            print_float(f_sin(1.570796)); putchar(10);
            print_float(f_sin(0.0)); putchar(10);
            return 0;
        }
        """
        assert both(src) == "1.000\n0.000\n"

    def test_f_cos_accuracy(self, both):
        src = """
        int main() { print_float(f_cos(0.0)); putchar(10); return 0; }
        """
        assert both(src) == "1.000\n"

    def test_f_exp_and_log_inverse(self, both):
        src = """
        int main() {
            print_float(f_exp(1.0)); putchar(10);       /* e */
            print_float(f_log(f_exp(2.0))); putchar(10); /* ~2 */
            return 0;
        }
        """
        out = both(src).splitlines()
        assert out[0].startswith("2.718")
        assert out[1].startswith("2.00") or out[1].startswith("1.99")

    def test_f_atan(self, both):
        src = """
        int main() { print_float(f_atan(1.0) * 4.0); putchar(10); return 0; }
        """
        assert both(src).startswith("3.14")

    def test_abs_int(self, both):
        src = """
        int main() {
            print_int(abs_int(-7)); print_int(abs_int(7)); print_int(abs_int(0));
            putchar(10); return 0;
        }
        """
        assert both(src) == "770\n"
