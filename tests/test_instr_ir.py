"""Tests for IR instruction helpers and containers."""

import pytest

from repro.rtl import instr as I
from repro.rtl.function import GlobalVar, IRFunction, IRProgram
from repro.rtl.operand import FLT, INT, Imm, Label, Reg, Sym, VReg, reg_class


class TestOperands:
    def test_vreg_repr(self):
        assert repr(VReg(3)) == "v3"
        assert repr(VReg(2, FLT)) == "vf2"

    def test_reg_repr_and_class(self):
        assert repr(Reg("r", 5)) == "r[5]"
        assert reg_class(Reg("f", 1)) == FLT
        assert reg_class(VReg(0)) == INT

    def test_reg_class_rejects_non_register(self):
        with pytest.raises(TypeError):
            reg_class(Imm(1))

    def test_operands_hashable(self):
        assert len({Reg("r", 1), Reg("r", 1), Reg("b", 1)}) == 2
        assert len({VReg(1), VReg(1), VReg(2)}) == 2

    def test_sym_offset_repr(self):
        assert repr(Sym("tab", 8)) == "tab+8"
        assert repr(Sym("tab")) == "tab"


class TestInstrHelpers:
    def test_defs_and_uses(self):
        ins = I.binop("add", VReg(0), VReg(1), VReg(2))
        assert ins.defs() == [VReg(0)]
        assert set(ins.uses()) == {VReg(1), VReg(2)}

    def test_imm_not_a_use(self):
        ins = I.binop("add", VReg(0), VReg(1), Imm(5))
        assert set(ins.uses()) == {VReg(1)}

    def test_store_has_no_defs(self):
        ins = I.store("sw", VReg(1), VReg(2), 4)
        assert ins.defs() == []
        assert set(ins.uses()) == {VReg(1), VReg(2)}

    def test_call_args_are_uses(self):
        ins = I.call("f", [VReg(1), VReg(2)], dst=VReg(0))
        assert set(ins.uses()) == {VReg(1), VReg(2)}
        assert ins.defs() == [VReg(0)]

    def test_replace_regs_is_nonmutating(self):
        ins = I.binop("add", VReg(0), VReg(1), Imm(5))
        swapped = ins.replace_regs(lambda r: VReg(r.vid + 10))
        assert swapped.dst == VReg(10)
        assert ins.dst == VReg(0)

    def test_classification(self):
        assert I.branch("eq", VReg(0), Imm(0), Label("L")).is_cond_branch()
        assert I.jump(Label("L")).is_transfer()
        assert I.ret().is_transfer()
        assert I.load("lw", VReg(0), VReg(1)).is_load()
        assert I.store("sb", VReg(0), VReg(1)).is_store()
        assert not I.trap("putchar", [VReg(1)]).is_transfer()

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            I.binop("pow", VReg(0), VReg(1), VReg(2))
        with pytest.raises(ValueError):
            I.branch("spaceship", VReg(0), VReg(1), Label("L"))
        with pytest.raises(ValueError):
            I.load("ld", VReg(0), VReg(1))

    def test_negated_is_involution(self):
        for cond in I.CONDS:
            assert I.NEGATED[I.NEGATED[cond]] == cond

    def test_swapped_is_involution(self):
        for cond in I.CONDS:
            assert I.SWAPPED[I.SWAPPED[cond]] == cond

    def test_repr_smoke(self):
        # Every shape renders without raising.
        samples = [
            I.label("L"),
            I.li(VReg(0), 3),
            I.la(VReg(0), Sym("g")),
            I.binop("xor", VReg(0), VReg(1), Imm(1)),
            I.unop("neg", VReg(0), VReg(1)),
            I.load("lb", VReg(0), VReg(1), 2),
            I.store("sf", VReg(0), VReg(1), -4),
            I.branch("le", VReg(0), Imm(0), Label("L")),
            I.jump(Label("L")),
            I.ijump(VReg(0)),
            I.call("f", [VReg(1)], dst=VReg(0)),
            I.trap("exit", [VReg(1)]),
            I.ret(VReg(0)),
            I.nop(),
        ]
        for ins in samples:
            assert repr(ins)


class TestContainers:
    def test_vreg_allocation_monotonic(self):
        fn = IRFunction("f")
        a, b = fn.new_vreg(), fn.new_flt()
        assert a.vid != b.vid
        assert b.cls == FLT

    def test_labels_unique(self):
        fn = IRFunction("f")
        assert fn.new_label() != fn.new_label()

    def test_emit_tracks_calls(self):
        fn = IRFunction("f")
        assert not fn.has_call
        fn.emit(I.call("g", []))
        assert fn.has_call

    def test_program_string_interning(self):
        prog = IRProgram()
        a = prog.intern_string("hello")
        b = prog.intern_string("hello")
        c = prog.intern_string("other")
        assert a == b != c

    def test_global_alignment(self):
        assert GlobalVar("b", 3, elem="byte").align == 1
        assert GlobalVar("w", 8, elem="word").align == 4
