"""End-to-end tests: emulation observer hooks and the report driver/CLI."""

import json

import pytest

from repro.ease.environment import compile_for_machine, run_on_machine
from repro.obs import events
from repro.obs.emuobs import EmulationObserver
from repro.obs.manifest import validate_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import replay_report, run_report
from repro.emu.baseline_emu import run_baseline
from repro.emu.branchreg_emu import run_branchreg

SIMPLE = """
int main() {
    int i; int n = 0;
    for (i = 0; i < 200; i++) n += i;
    print_int(n); putchar(10);
    return 0;
}
"""


class TestEmulationObserver:
    def test_stats_identical_with_and_without_observer(self):
        plain = run_on_machine(SIMPLE, "branchreg", name="simple")
        observed = run_on_machine(
            SIMPLE,
            "branchreg",
            name="simple",
            observer=EmulationObserver(sample_every=100, registry=MetricsRegistry()),
        )
        assert observed.instructions == plain.instructions
        assert observed.output == plain.output
        assert observed.opcounts == plain.opcounts

    def test_observer_counts_runs_and_samples(self):
        registry = MetricsRegistry()
        observer = EmulationObserver(sample_every=100, registry=registry)
        image = compile_for_machine(SIMPLE, "baseline")
        stats = run_baseline(image, program="simple", observer=observer)
        assert observer.runs == 1
        assert observer.samples == stats.instructions // 100
        assert (
            registry.counter("emu.instructions", machine="baseline").value
            == stats.instructions
        )

    def test_events_emitted(self):
        previous = events.set_sink(events.MemorySink())
        try:
            sink = events.get_sink()
            image = compile_for_machine(SIMPLE, "branchreg")
            run_branchreg(
                image,
                program="simple",
                observer=EmulationObserver(
                    sample_every=100, registry=MetricsRegistry()
                ),
            )
            assert len(sink.by_type("emu.start")) == 1
            assert len(sink.by_type("emu.sample")) >= 1
            ends = sink.by_type("emu.end")
            assert len(ends) == 1
            assert ends[0]["machine"] == "branchreg"
            assert "prefetch_gap" in ends[0]
        finally:
            events.set_sink(previous)

    def test_invalid_sample_interval_rejected(self):
        with pytest.raises(ValueError):
            EmulationObserver(sample_every=0)

    def test_sample_every_one_samples_every_instruction(self):
        observer = EmulationObserver(sample_every=1, registry=MetricsRegistry())
        image = compile_for_machine(SIMPLE, "branchreg")
        stats = run_branchreg(image, program="simple", observer=observer)
        assert observer.samples == stats.instructions

    def test_sample_interval_equal_to_run_length_samples_once(self):
        # The last instruction is a sampling boundary: exactly one sample.
        image = compile_for_machine(SIMPLE, "branchreg")
        plain = run_branchreg(image.reset(), program="simple")
        observer = EmulationObserver(
            sample_every=plain.instructions, registry=MetricsRegistry()
        )
        run_branchreg(image.reset(), program="simple", observer=observer)
        assert observer.samples == 1

    def test_sample_interval_beyond_run_length_never_samples(self):
        image = compile_for_machine(SIMPLE, "branchreg")
        plain = run_branchreg(image.reset(), program="simple")
        observer = EmulationObserver(
            sample_every=plain.instructions + 1, registry=MetricsRegistry()
        )
        stats = run_branchreg(image.reset(), program="simple", observer=observer)
        assert observer.samples == 0
        assert observer.runs == 1
        assert stats.instructions == plain.instructions


@pytest.fixture(scope="module")
def report():
    return run_report(subset=("wc",), sample_every=4096)


class TestRunReport:
    def test_manifest_schema_valid(self, report):
        validate_manifest(report["manifest"])

    def test_per_program_stats_present(self, report):
        programs = report["manifest"]["programs"]
        assert [p["name"] for p in programs] == ["wc"]
        assert programs[0]["baseline"]["instructions"] > 0
        assert programs[0]["duration_s"] > 0

    def test_all_pipeline_phases_timed(self, report):
        phases = set(report["manifest"]["phase_totals"])
        assert {"frontend", "opt", "codegen", "emulate", "workload"} <= phases

    def test_metrics_include_emulation_counters(self, report):
        counters = {
            (c["name"], tuple(sorted(c["labels"].items())))
            for c in report["manifest"]["metrics"]["counters"]
        }
        assert ("emu.instructions", (("machine", "baseline"),)) in counters
        assert ("codegen.instructions", (("machine", "branchreg"),)) in counters

    def test_text_profile_renders(self, report):
        assert "Phase profile" in report["text"]
        assert "wc" in report["text"]

    def test_histogram_percentiles_rendered(self, report):
        rows = report["manifest"]["metrics"]["histograms"]
        assert any("p50" in row for row in rows)
        assert "Histogram percentiles:" in report["text"]

    def test_cache_telemetry_rendered(self, report):
        # The report path bypasses the memo cache (use_cache=False), and
        # that shows up as bypasses rather than misses.
        from repro.obs.manifest import memo_cache_counters

        memo = memo_cache_counters(report["manifest"]["metrics"])
        assert memo == {
            "hits": 0, "misses": 0, "bypassed": 1, "hit_rate": None,
        }
        assert "Cache telemetry:" in report["text"]
        assert "memo cache      0 hit(s), 0 miss(es), 1 bypassed" in (
            report["text"]
        )

    def test_parallel_manifest_reports_cache_sections(self, tmp_path):
        result = run_report(
            subset=("wc", "sieve"), sample_every=4096, jobs=2,
            cache_dir=str(tmp_path / "cache"),
        )
        parallel = result["manifest"]["parallel"]
        assert parallel["jobs"] == 2
        artifact = parallel["artifact_cache"]
        assert artifact["misses"] == 4  # 2 workloads x 2 machines, all cold
        assert artifact["hits"] == 0
        assert artifact["bytes_written"] > 0
        assert artifact["bytes_read"] == 0
        assert artifact["hit_rate"] == 0.0
        assert parallel["memo_cache"]["bypassed"] == 1
        validate_manifest(result["manifest"])

    def test_events_path_written(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_report(subset=("wc",), events_path=str(path), sample_every=4096)
        lines = path.read_text().strip().splitlines()
        assert lines
        types = {json.loads(line)["type"] for line in lines}
        assert "emu.end" in types and "span" in types

    def test_replay_renders_saved_manifest(self, report, tmp_path):
        from repro.obs.report import save_report

        path = save_report(report, out=str(tmp_path / "run.json"))
        replayed = replay_report(path)
        assert replayed["text"] == report["text"]


class TestReportCli:
    def test_report_command_writes_valid_manifest(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        rc = main(["report", "--subset", "wc", "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "Phase profile" in printed
        assert "manifest:" in printed
        validate_manifest(json.loads(out.read_text()))

    def test_report_replay_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        main(["report", "--subset", "wc", "--out", str(out)])
        capsys.readouterr()
        rc = main(["report", "--replay", str(out)])
        assert rc == 0
        assert "Phase profile" in capsys.readouterr().out
