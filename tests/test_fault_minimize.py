"""Delta-debugging of generated statement trees."""

from repro.fault.minimize import minimize
from repro.fault.progen import (
    expected_output,
    interpret,
    program_source,
    random_program,
    render_c,
)


def contains_augment(stmts):
    for stmt in stmts:
        if stmt[0] == "augment":
            return True
        if stmt[0] == "if":
            if contains_augment(stmt[2]):
                return True
            if stmt[3] is not None and contains_augment(stmt[3]):
                return True
        if stmt[0] == "loop" and contains_augment(stmt[2]):
            return True
    return False


def tree_size(stmts):
    total = 0
    for stmt in stmts:
        total += 1
        if stmt[0] == "if":
            total += tree_size(stmt[2])
            if stmt[3] is not None:
                total += tree_size(stmt[3])
        elif stmt[0] == "loop":
            total += tree_size(stmt[2])
    return total


class TestMinimize:
    BIG = [
        ("assign", "a", "5"),
        ("loop", 3, [
            ("augment", "b", "(a + 2)"),
            ("assign", "c", "7"),
        ]),
        ("if", "(a > 1)", [
            ("assign", "d", "1"),
            ("if", "b", [("augment", "a", "2")], [("assign", "b", "0")]),
        ], [
            ("assign", "d", "2"),
        ]),
        ("assign", "c", "(c ^ 3)"),
    ]

    def test_minimize_preserves_predicate(self):
        result = minimize(self.BIG, contains_augment)
        assert contains_augment(result)

    def test_minimize_shrinks(self):
        result = minimize(self.BIG, contains_augment)
        assert tree_size(result) < tree_size(self.BIG)
        # the smallest tree satisfying the predicate is one statement
        assert tree_size(result) <= 2

    def test_minimize_never_fails_predicate_returns_input(self):
        result = minimize(self.BIG, lambda stmts: False)
        assert result == self.BIG

    def test_minimized_tree_still_renders_and_interprets(self):
        result = minimize(self.BIG, contains_augment)
        source = program_source(result)
        assert "int main()" in source
        env = {"a": 1, "b": 2, "c": 3, "d": 4}
        interpret(result, env)  # must not raise

    def test_minimize_respects_check_budget(self):
        calls = []

        def expensive(stmts):
            calls.append(1)
            return False

        minimize(self.BIG, expensive, max_checks=10)
        assert len(calls) <= 10

    def test_minimize_on_random_trees_terminates_small(self):
        import random

        for seed in range(5):
            stmts = random_program(random.Random(seed))
            if not contains_augment(stmts):
                continue
            result = minimize(stmts, contains_augment)
            assert contains_augment(result)
            assert tree_size(result) <= tree_size(stmts)


class TestRenderCounterThreading:
    def test_render_is_pure_no_shared_counter(self):
        tree = [("loop", 2, [("assign", "a", "1")])]
        first = render_c(tree)
        second = render_c(tree)
        assert first == second
        assert any("int t1 =" in line for line in first)

    def test_nested_loops_get_distinct_counters(self):
        tree = [("loop", 2, [("loop", 3, [("assign", "a", "1")])])]
        lines = render_c(tree)
        text = "\n".join(lines)
        assert "int t1 =" in text
        assert "int t2 =" in text

    def test_expected_output_matches_model(self):
        tree = [("augment", "a", "10"), ("loop", 2, [("augment", "b", "3")])]
        assert expected_output(tree) == "11 8 3 4\n"
